// PSI-Lib service layer: the group-commit writer.
//
// A GroupCommitter turns single-writer batch-dynamic indexes into an
// epoch-published, sharded store. It is the only component that mutates
// index state, and callers must serialise calls into it (SpatialService
// does, with one commit mutex); everything else — readers, producers — is
// wait-free with respect to it.
//
// Commit protocol for one drained request group:
//   1. Route updates: every insert/delete goes to exactly one shard through
//      the ShardMap (by SFC code of the point), coalescing maximal runs of
//      same-kind ops so FIFO submission order is preserved exactly (a
//      delete-then-insert of the same point nets to present, and vice
//      versa).
//   2. Apply: for each touched shard, take the *standby* replica, wait for
//      it to become quiescent (epoch.h grace period), replay the pending
//      log (the runs the replica missed last time), apply this group's
//      runs in order, and swap the replica in as the shard's live
//      instance. Shards apply in parallel on the fork-join scheduler
//      (parallel_for_shards).
//   3. Rebalance: split any shard whose population exceeds the split
//      threshold at the median SFC code of its contents, and merge adjacent
//      underfull shards — bp-forest's seat split/merge, on curve ranges.
//      Rebuilt shards get two fresh replicas and an empty pending log.
//   4. Publish: a new View (map + live handles) is stamped with the next
//      epoch and swapped in atomically. Update futures resolve with this
//      epoch.
//   5. Answer the group's queries against the just-published view, in
//      parallel over queries. A query drained in group G therefore observes
//      every update of groups <= G and nothing later — group-commit
//      linearisation.
//
// Structure: the committer composes two location-agnostic pieces —
//
//   * a ShardDirectory (shard_map.h): the authoritative record of shard
//     ranges, stable keys, owner nodes, content versions, and the topology
//     stamp. The in-process committer hosts every shard on node 0; the
//     distributed coordinator (net/node.h) drives the identical directory
//     with real placements.
//   * a ShardStore (shard_store.h): the replica slot mechanics — ping-pong
//     standby, grace periods, pending-log replay, pipelined asynchronous
//     replays, replica rebuilds under pinned readers. The same store runs
//     on every node of the distributed service.
//
// The ping-pong standby costs 2x memory and applies every batch twice, and
// in exchange updates never copy a tree and readers never take a lock; the
// replay is batched work on a tree of the same size the live apply just
// handled, so write throughput stays within ~2x of the raw index.
//
// Pipelined commits (cfg.pipelined_commits, default on): the standby
// replay is taken off the commit critical path — see shard_store.h for the
// task protocol. Epoch publication order, the grace-period protocol, and
// the observable commit semantics are unchanged.

#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "psi/durability/wal.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"
#include "psi/service/epoch.h"
#include "psi/service/request_queue.h"
#include "psi/service/service_stats.h"
#include "psi/service/shard_map.h"
#include "psi/service/shard_store.h"
#include "psi/service/snapshot.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/trace.h"

namespace psi::service {

struct ServiceConfig {
  std::size_t initial_shards = 4;
  // Drain at most this many requests per commit group (0 = unbounded).
  std::size_t max_group = 0;
  // Split a shard above this many points; merge two adjacent shards whose
  // combined population falls below merge_threshold (0 = split_threshold/4).
  std::size_t split_threshold = std::size_t{1} << 21;
  std::size_t merge_threshold = 0;
  // Never merge below this many shards; 0 = initial_shards, so an explicit
  // shard count acts as a floor and small datasets don't silently collapse
  // to one shard under the (large-scale) default merge threshold.
  std::size_t min_shards = 0;
  std::size_t max_shards = 1024;
  // Background committer wake-up interval (service.h).
  int commit_interval_ms = 1;
  // Two-stage commit pipeline: replay the standby asynchronously after
  // publish instead of on the next commit's critical path (see
  // shard_store.h). Off = the strictly sequential replay-then-apply writer.
  bool pipelined_commits = true;
  // Query-cache shape (service.h / query_cache.h): number of memo slots,
  // and the size-aware admission budget — list results above this many
  // bytes are answered but not cached.
  std::size_t cache_entries = 16;
  std::size_t cache_max_entry_bytes = std::size_t{1} << 20;
  // Pinned-epoch read retention (api::ReadOptions::pinned): how many
  // published views stay reachable by epoch. 1 (the default) retains only
  // the live view — pinning works for the current epoch and the write path
  // is untouched. Depths > 1 enable "query as of epoch E" over the last N
  // epochs at the cost of a standby-replica rebuild per commit on
  // recently-touched shards (see epoch.h, RetainedViews). Reads past the
  // horizon raise api::EpochRetired; retention never blocks the committer.
  std::size_t retained_epochs = 1;
  // Durability (durability/durability.h): off by default — no WAL, no
  // checkpoints, zero write-path overhead beyond one untaken branch.
  psi::durability::DurabilityConfig durability{};

  std::size_t effective_merge_threshold() const {
    return merge_threshold != 0 ? merge_threshold : split_threshold / 4;
  }
  std::size_t effective_min_shards() const {
    return std::max<std::size_t>(1, min_shards != 0 ? min_shards
                                                    : initial_shards);
  }
};

template <typename Index, typename Codec>
class GroupCommitter {
 public:
  using view_t = View<Index, Codec>;
  using point_t = typename view_t::point_t;
  using box_t = typename view_t::box_t;
  using coord_t = typename view_t::coord_t;
  static constexpr int kDim = view_t::kDim;
  using map_t = typename view_t::map_t;
  using request_t = Request<coord_t, kDim>;
  using result_t = Result<coord_t, kDim>;
  using snapshot_t = Snapshot<Index, Codec>;
  using store_t = ShardStore<Index>;
  using run_t = typename store_t::run_t;
  // The shard factory receives the shard's slot index at creation time, so
  // one service can run *heterogeneous* backends per shard (Index =
  // api::AnyIndex; e.g. SPaC-Z for hot low-id shards, the log-structured
  // baseline for cold ones). Slots created by split/merge ask the factory
  // with the index the new slot will occupy; a slot's replicas always come
  // from the same factory id, so live and standby stay the same backend.
  using factory_t = typename store_t::factory_t;

  GroupCommitter(ServiceConfig cfg, factory_t factory)
      : cfg_(cfg),
        dir_(std::max<std::size_t>(1, cfg.initial_shards)),
        store_(std::move(factory), cfg.pipelined_commits),
        retained_(cfg.retained_epochs) {
    store_.set_metrics(metrics_);
    store_.set_retention_pinned(cfg.retained_epochs > 1);
    store_.init_empty(dir_.num_shards());
    publish();
  }

  // Reader entry point: pin the current view.
  std::shared_ptr<const view_t> acquire() const { return slot_.acquire(); }

  // Pinned-read entry point: the retained view of exactly `epoch`, or
  // nullptr when it fell off the retention horizon (the caller surfaces
  // api::EpochRetired). Every published epoch is retained, so with the
  // default depth 1 this answers only the current epoch.
  std::shared_ptr<const view_t> acquire_at(std::uint64_t epoch) const {
    return retained_.at(epoch);
  }

  // Cheap observers: one relaxed atomic load each, no epoch pin, no
  // replica refcount traffic — the values of the last published view.
  std::uint64_t epoch() const { return epoch_.current(); }
  std::size_t size() const {
    return published_size_.load(std::memory_order_relaxed);
  }

  // Arena footprint of the last published view, mirrored into a shared
  // atomic block at publish time so registry gauges can sample it from any
  // thread, even after this committer is gone (they hold the shared_ptr).
  struct ArenaGauges {
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::size_t> chunks{0};
    std::atomic<std::uint64_t> raw_copies{0};
  };
  std::shared_ptr<const ArenaGauges> arena_gauges() const {
    return arena_gauges_;
  }

  // Bulk load (replaces current contents). The shard map is recomputed
  // with equal-population boundaries at the code quantiles of the data —
  // the static analogue of what split/merge converges to under streaming
  // updates. One encode pass + one parallel sort yields both the
  // boundaries and contiguous per-shard slices, from which both replicas
  // of each shard are built.
  void load(const std::vector<point_t>& pts) {
    PSI_TRACE_SPAN("commit.load");
    const std::size_t n = pts.size();
    std::vector<CodedPoint<point_t>> coded = code_and_sort<Codec>(pts);
    std::vector<std::uint64_t> codes = tabulate<std::uint64_t>(
        n, [&](std::size_t i) { return coded[i].code; });
    // Wholesale replacement: every shard gets a fresh key and version and
    // the topology generation advances, invalidating all cached results.
    dir_.reset(map_t::from_sorted_codes(
        codes, std::max<std::size_t>(1, cfg_.initial_shards)));
    const std::size_t k = dir_.num_shards();
    // resize_slots settles the in-flight replays of the outgoing slots.
    stats_.grace_yields += store_.resize_slots(k);
    parallel_for_shards(k, [&](std::size_t i) {
      // Shard i owns the contiguous sorted slice of codes in its range.
      store_.build_slot_at(i, shard_slice(coded, codes, dir_.map(), i), i);
    });
    rebalance();
    publish();
  }

  // Apply one drained FIFO group. Must be externally serialised.
  void commit(std::vector<request_t> group) {
    if (group.empty()) return;
    const std::size_t k = dir_.num_shards();
    // Per-shard ordered runs of same-kind ops: coalesces into batches while
    // preserving each shard's FIFO op order exactly.
    std::vector<std::vector<run_t>> runs(k);
    std::vector<request_t*> queries;
    bool has_updates = false;
    for (auto& req : group) {
      switch (req.kind) {
        case RequestKind::kInsert:
        case RequestKind::kDelete: {
          const bool is_delete = req.kind == RequestKind::kDelete;
          ++(is_delete ? stats_.ops_delete : stats_.ops_insert);
          auto& shard_runs = runs[dir_.map().shard_of(req.pt)];
          if (shard_runs.empty() || shard_runs.back().is_delete != is_delete) {
            shard_runs.push_back(run_t{is_delete, {}});
          }
          shard_runs.back().pts.push_back(req.pt);
          has_updates = true;
          break;
        }
        case RequestKind::kKnn:
          ++stats_.ops_knn;
          queries.push_back(&req);
          break;
        case RequestKind::kRangeCount:
          ++stats_.ops_range_count;
          queries.push_back(&req);
          break;
        case RequestKind::kRangeList:
          ++stats_.ops_range_list;
          queries.push_back(&req);
          break;
        case RequestKind::kBall:
          ++stats_.ops_ball;
          queries.push_back(&req);
          break;
      }
    }

    if (has_updates) {
      // Durability: serialise the whole group as ONE record (the group is
      // the atomicity unit) BEFORE the apply std::moves the runs away, and
      // before any state mutates. The epoch stamped here is the one
      // publish() will assign — the writer is externally serialised and
      // rebalance never publishes.
      if constexpr (psi::durability::kEnabled) {
        if (wal_ != nullptr) {
          telemetry::ScopedTimer t(&metrics_->wal_append);
          std::vector<psi::durability::CommitShardRef<point_t>> entry;
          entry.reserve(k);
          for (std::size_t i = 0; i < k; ++i) {
            if (!runs[i].empty()) {
              entry.push_back({dir_.key_of(i), dir_.version_of(i), &runs[i]});
            }
          }
          wal_->append(
              psi::durability::encode_commit_record(epoch_.current() + 1,
                                                    entry));
        }
      }
      {
        PSI_TRACE_SPAN("commit.apply");
        std::vector<std::uint64_t> yields(k, 0);
        parallel_for_shards(k, [&](std::size_t i) {
          if (runs[i].empty()) return;
          if constexpr (telemetry::kEnabled) {
            std::uint64_t n_pts = 0;
            for (const run_t& r : runs[i]) n_pts += r.pts.size();
            heat_.record_write(i, n_pts);
          }
          telemetry::ScopedTimer t(
              &metrics_->stage_hist(telemetry::Stage::kApply));
          yields[i] = store_.apply(i, std::move(runs[i]));
          // Distinct indices per task; the version allocator is atomic.
          dir_.touch(i);
        });
        for (auto y : yields) stats_.grace_yields += y;
      }
      // Untouched shards may still be replaying batch i-1 — that is the
      // pipeline's overlap, so they are NOT joined here. Moving a slot is
      // safe while its task runs (the task owns copies, never slot
      // pointers), and a split/merge that overwrites or erases a slot
      // joins that one task implicitly through AsyncTask's move-assign /
      // destructor.
      {
        PSI_TRACE_SPAN("commit.rebalance");
        rebalance();
      }
      // fsync BEFORE publish: update futures resolve after publication, so
      // when a client observes its ack the record is already on durable
      // media — an acknowledged commit can never be lost to a crash.
      if constexpr (psi::durability::kEnabled) {
        if (wal_ != nullptr) {
          const std::uint64_t ns = wal_->sync();
          if constexpr (telemetry::kEnabled) {
            if (ns != 0) metrics_->wal_fsync.record(ns);
          }
        }
      }
      publish();
      store_.spawn_replays();
    }

    const std::uint64_t epoch = stats_.epoch;
    // Answer queries against the (possibly just republished) current view.
    PSI_TRACE_SPAN("commit.queries");
    snapshot_t snap(acquire());
    parallel_for(
        0, queries.size(),
        [&](std::size_t qi) {
          request_t& req = *queries[qi];
          result_t res;
          res.epoch = epoch;
          switch (req.kind) {
            case RequestKind::kKnn:
              res.points = snap.knn(req.pt, req.k);
              break;
            case RequestKind::kRangeCount:
              res.count = snap.range_count(req.box);
              break;
            case RequestKind::kRangeList:
              res.points = snap.range_list(req.box);
              res.count = res.points.size();
              break;
            case RequestKind::kBall:
              res.points = snap.ball_list(req.pt, req.radius);
              res.count = res.points.size();
              break;
            default:
              break;
          }
          record_queued_latency(req);
          req.promise.set_value(std::move(res));
        },
        1);
    // Update futures resolve after publication: when the future is ready,
    // the op is visible to every subsequent snapshot.
    for (auto& req : group) {
      if (req.kind == RequestKind::kInsert || req.kind == RequestKind::kDelete) {
        result_t res;
        res.epoch = epoch;
        record_queued_latency(req);
        req.promise.set_value(std::move(res));
      }
    }
  }

  ServiceStats stats() const {
    ServiceStats s = stats_;
    s.replica_rebuilds = store_.replica_rebuilds();
    s.arena_bytes = store_.arena_bytes();
    s.arena_chunks = store_.arena_chunks();
    s.handoff_raw_copies = store_.raw_copies();
    s.num_shards = store_.num_slots();
    s.shard_sizes.clear();
    s.shard_sizes.reserve(store_.num_slots());
    s.size_total = 0;
    for (std::size_t i = 0; i < store_.num_slots(); ++i) {
      s.shard_sizes.push_back(store_.size_of(i));
      s.size_total += store_.size_of(i);
    }
    if constexpr (psi::durability::kEnabled) {
      if (wal_ != nullptr) {
        s.wal_appends = wal_->appends();
        s.wal_bytes = wal_->bytes();
      }
    }
    if constexpr (telemetry::kEnabled) {
      s.wal_fsync = telemetry::summarize(metrics_->wal_fsync.snapshot());
      using telemetry::QueuedOp;
      using telemetry::ReadOp;
      // Per logical op: the queued (end-to-end) recordings merged with the
      // direct snapshot read-path recordings of the same op, so both API
      // styles land in one summary. Ball folds its count+list read kinds.
      auto q = [&](QueuedOp o) { return metrics_->queued_hist(o).snapshot(); };
      auto r = [&](ReadOp o) { return metrics_->read_hist(o).snapshot(); };
      s.latency.resize(telemetry::kNumQueuedOps);
      s.latency[static_cast<std::size_t>(QueuedOp::kInsert)] =
          telemetry::summarize(q(QueuedOp::kInsert));
      s.latency[static_cast<std::size_t>(QueuedOp::kDelete)] =
          telemetry::summarize(q(QueuedOp::kDelete));
      s.latency[static_cast<std::size_t>(QueuedOp::kKnn)] =
          telemetry::summarize(q(QueuedOp::kKnn) + r(ReadOp::kKnn));
      s.latency[static_cast<std::size_t>(QueuedOp::kRangeCount)] =
          telemetry::summarize(q(QueuedOp::kRangeCount) +
                               r(ReadOp::kRangeCount));
      s.latency[static_cast<std::size_t>(QueuedOp::kRangeList)] =
          telemetry::summarize(q(QueuedOp::kRangeList) +
                               r(ReadOp::kRangeList));
      s.latency[static_cast<std::size_t>(QueuedOp::kBall)] =
          telemetry::summarize(q(QueuedOp::kBall) + r(ReadOp::kBallCount) +
                               r(ReadOp::kBallList));
      s.stages.resize(telemetry::kNumStages);
      for (std::size_t i = 0; i < telemetry::kNumStages; ++i) {
        s.stages[i] = telemetry::summarize(
            metrics_->stage_hist(static_cast<telemetry::Stage>(i)).snapshot());
      }
      s.shard_heat = heat_.entries();
      s.shard_heat_decayed = heat_.decayed();
    }
    return s;
  }

  // The committer's telemetry bundle (service.h records drain and cache
  // timings into it; always non-null, histograms no-op when disabled).
  const std::shared_ptr<telemetry::ServiceMetrics>& metrics() const {
    return metrics_;
  }

  // Arm the write-ahead log. The writer is owned by the caller
  // (SpatialService), opened AFTER recovery replays the existing log —
  // replayed commits must not be re-logged. Null disarms.
  void set_wal(psi::durability::WalWriter* wal) { wal_ = wal; }

 private:
  // bp-forest style seat management: split overgrown shards at the median
  // code of their contents, merge adjacent underfull neighbours.
  void rebalance() {
    for (std::size_t i = 0; i < store_.num_slots();) {
      if (store_.size_of(i) > cfg_.split_threshold &&
          store_.size_of(i) != store_.unsplittable_at(i) &&
          dir_.num_shards() < cfg_.max_shards) {
        if (split_shard(i)) {
          ++stats_.splits;
          continue;  // re-examine the left half (may still be overgrown)
        }
        store_.set_unsplittable_at(i, store_.size_of(i));
      }
      ++i;
    }
    const std::size_t merge_at = cfg_.effective_merge_threshold();
    const std::size_t min_shards = cfg_.effective_min_shards();
    for (std::size_t i = 0; i + 1 < store_.num_slots();) {
      const std::size_t combined = store_.size_of(i) + store_.size_of(i + 1);
      if (combined < merge_at && store_.num_slots() > min_shards) {
        merge_shards(i);
        ++stats_.merges;
        continue;  // the merged shard may absorb the next neighbour too
      }
      ++i;
    }
  }

  bool split_shard(std::size_t i) {
    const std::vector<point_t> pts = store_.flatten(i);
    // Codes are computed once and sorted with the parallel sample sort:
    // this runs under the commit lock on a threshold-sized shard, so a
    // sequential comparison sort (encoding per comparison) would stall
    // every queued client.
    std::vector<CodedPoint<point_t>> coded = code_and_sort<Codec>(pts);
    const auto cut = split_position(coded);
    if (!cut) return false;
    const auto [mid, boundary] = *cut;
    if (!dir_.split(i, boundary)) return false;
    const std::size_t n = pts.size();
    std::vector<point_t> left = tabulate<point_t>(
        mid, [&](std::size_t j) { return coded[j].pt; });
    std::vector<point_t> right = tabulate<point_t>(
        n - mid, [&](std::size_t j) { return coded[mid + j].pt; });
    // Fresh backends from the factory at the slots' new positions: with a
    // heterogeneous factory a split migrates points across backend types
    // through the common flatten()/build() surface.
    store_.replace_slot(i, left, i);
    store_.insert_slot(i + 1, right, i + 1);
    return true;
  }

  void merge_shards(std::size_t i) {
    std::vector<point_t> pts = store_.flatten(i);
    std::vector<point_t> rhs = store_.flatten(i + 1);
    pts.insert(pts.end(), rhs.begin(), rhs.end());
    dir_.merge(i, dir_.owner_of(i));
    store_.replace_slot(i, pts, i);
    store_.erase_slot(i + 1);
  }

  // Queued-op end-to-end latency: enqueue to promise resolution. Query
  // kinds therefore include the service time of answering against the
  // published view; update kinds end at publication.
  void record_queued_latency(const request_t& req) {
    if constexpr (!telemetry::kEnabled) return;
    if (req.enqueue_ns == 0) return;  // committed without passing the queue
    const std::uint64_t now = telemetry::now_ns();
    metrics_
        ->queued_hist(static_cast<telemetry::QueuedOp>(
            static_cast<std::size_t>(req.kind)))
        .record(now - req.enqueue_ns);
  }

  std::uint64_t publish() {
    PSI_TRACE_SPAN("commit.publish");
    telemetry::ScopedTimer publish_timer(
        &metrics_->stage_hist(telemetry::Stage::kPublish));
    // Heat follows the directory: realign to the (possibly restructured)
    // shard topology by stable key, then fold this epoch's traffic into
    // the EWMA.
    heat_.realign(dir_.keys());
    heat_.decay();
    auto v = std::make_shared<view_t>();
    v->metrics = metrics_;
    v->heat_cells = heat_.cells();
    // The writer is externally serialised, so current()+1 is the epoch
    // advance() will return below.
    const std::uint64_t next = epoch_.current() + 1;
    v->epoch = next;
    v->map = dir_.map();
    v->shard_versions = dir_.versions();
    v->map_stamp = dir_.stamp();
    v->shard_keys = dir_.keys();
    v->shard_owners = dir_.owners();
    v->shards.reserve(store_.num_slots());
    std::size_t total = 0;
    for (std::size_t i = 0; i < store_.num_slots(); ++i) {
      total += store_.size_of(i);
      v->shards.push_back(store_.live(i));
    }
    // Publish the view first, then bump the cheap observers: a reader that
    // sees epoch()/size() report commit N is guaranteed snapshot() returns
    // view N or newer, never older (the converse — a snapshot briefly
    // newer than epoch() — is benign: both are monotone).
    retained_.retain(next, v);
    slot_.publish(std::move(v));
    epoch_.advance();
    published_size_.store(total, std::memory_order_relaxed);
    // Mirror the arena footprint into the shared gauge block here, under
    // the writer: gauge callbacks (registry.h) may fire from any thread —
    // and outlive this committer — so they must not walk the slot array a
    // concurrent split/merge is restructuring.
    arena_gauges_->bytes.store(store_.arena_bytes(),
                               std::memory_order_relaxed);
    arena_gauges_->chunks.store(store_.arena_chunks(),
                                std::memory_order_relaxed);
    arena_gauges_->raw_copies.store(store_.raw_copies(),
                                    std::memory_order_relaxed);
    stats_.epoch = next;
    ++stats_.commits;
    return stats_.epoch;
  }

  ServiceConfig cfg_;
  // The authoritative shard record: ranges, keys, owners, versions, stamp.
  ShardDirectory<coord_t, kDim, Codec> dir_;
  // The replica slots, positionally aligned with dir_.
  store_t store_;
  EpochCounter epoch_;
  SnapshotSlot<view_t> slot_;
  // Epoch-keyed retention ring behind acquire_at (pinned reads).
  RetainedViews<view_t> retained_;
  ServiceStats stats_;
  // Telemetry: the histogram bundle (shared with the store's replay tasks
  // and every published view) and the per-shard heat accounting.
  std::shared_ptr<telemetry::ServiceMetrics> metrics_ =
      std::make_shared<telemetry::ServiceMetrics>();
  telemetry::ShardHeat heat_;
  // Total population of the last published view; read lock-free by
  // SpatialService::size() without constructing a Snapshot.
  std::atomic<std::size_t> published_size_{0};
  std::shared_ptr<ArenaGauges> arena_gauges_ = std::make_shared<ArenaGauges>();
  // Write-ahead log, armed by SpatialService after recovery (never owned).
  psi::durability::WalWriter* wal_ = nullptr;
};

}  // namespace psi::service
