// PSI-Lib service layer: the group-commit writer.
//
// A GroupCommitter turns single-writer batch-dynamic indexes into an
// epoch-published, sharded store. It is the only component that mutates
// index state, and callers must serialise calls into it (SpatialService
// does, with one commit mutex); everything else — readers, producers — is
// wait-free with respect to it.
//
// Commit protocol for one drained request group:
//   1. Route updates: every insert/delete goes to exactly one shard through
//      the ShardMap (by SFC code of the point), coalescing maximal runs of
//      same-kind ops so FIFO submission order is preserved exactly (a
//      delete-then-insert of the same point nets to present, and vice
//      versa).
//   2. Apply: for each touched shard, take the *standby* replica, wait for
//      it to become quiescent (epoch.h grace period), replay the pending
//      log (the runs the replica missed last time), apply this group's
//      runs in order, and swap the replica in as the shard's live
//      instance. Shards apply in parallel on the fork-join scheduler
//      (parallel_for_shards).
//   3. Rebalance: split any shard whose population exceeds the split
//      threshold at the median SFC code of its contents, and merge adjacent
//      underfull shards — bp-forest's seat split/merge, on curve ranges.
//      Rebuilt shards get two fresh replicas and an empty pending log.
//   4. Publish: a new View (map + live handles) is stamped with the next
//      epoch and swapped in atomically. Update futures resolve with this
//      epoch.
//   5. Answer the group's queries against the just-published view, in
//      parallel over queries. A query drained in group G therefore observes
//      every update of groups <= G and nothing later — group-commit
//      linearisation.
//
// The ping-pong standby costs 2x memory and applies every batch twice, and
// in exchange updates never copy a tree and readers never take a lock; the
// replay is batched work on a tree of the same size the live apply just
// handled, so write throughput stays within ~2x of the raw index.
//
// Pipelined commits (cfg.pipelined_commits, default on): the standby
// replay is taken off the commit critical path. Right after publishing
// epoch i, each touched shard spawns a detached replay task (AsyncTask)
// that waits out the grace period and replays batch i onto the new standby
// on pool workers — overlapping with the answering of group i's queries,
// with any number of query-only groups, and (since the join is per shard,
// at the moment that shard is next written) with the live apply of batch
// i+1 on *other* shards. Epoch publication order, the grace-period
// protocol, and the observable commit semantics are unchanged: a commit
// that reaches a shard whose replay is still running simply joins it
// first, which is exactly the work the unpipelined writer would have done
// inline. Replay tasks never hold pointers into their slot (they own
// copies of the standby handle and the runs), so slots may move freely
// while a task runs; a rebuild that overwrites or drops a slot joins that
// slot's task through AsyncTask's move-assign/destructor, and load()
// settles everything before replacing the slot array.

#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "psi/parallel/primitives.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"
#include "psi/parallel/task_group.h"
#include "psi/service/epoch.h"
#include "psi/service/request_queue.h"
#include "psi/service/service_stats.h"
#include "psi/service/shard_map.h"
#include "psi/service/snapshot.h"

namespace psi::service {

struct ServiceConfig {
  std::size_t initial_shards = 4;
  // Drain at most this many requests per commit group (0 = unbounded).
  std::size_t max_group = 0;
  // Split a shard above this many points; merge two adjacent shards whose
  // combined population falls below merge_threshold (0 = split_threshold/4).
  std::size_t split_threshold = std::size_t{1} << 21;
  std::size_t merge_threshold = 0;
  // Never merge below this many shards; 0 = initial_shards, so an explicit
  // shard count acts as a floor and small datasets don't silently collapse
  // to one shard under the (large-scale) default merge threshold.
  std::size_t min_shards = 0;
  std::size_t max_shards = 1024;
  // Background committer wake-up interval (service.h).
  int commit_interval_ms = 1;
  // Two-stage commit pipeline: replay the standby asynchronously after
  // publish instead of on the next commit's critical path (see the header
  // comment). Off = the strictly sequential replay-then-apply writer.
  bool pipelined_commits = true;
  // Query-cache shape (service.h / query_cache.h): number of memo slots,
  // and the size-aware admission budget — list results above this many
  // bytes are answered but not cached.
  std::size_t cache_entries = 16;
  std::size_t cache_max_entry_bytes = std::size_t{1} << 20;

  std::size_t effective_merge_threshold() const {
    return merge_threshold != 0 ? merge_threshold : split_threshold / 4;
  }
  std::size_t effective_min_shards() const {
    return std::max<std::size_t>(1, min_shards != 0 ? min_shards
                                                    : initial_shards);
  }
};

template <typename Index, typename Codec>
class GroupCommitter {
 public:
  using view_t = View<Index, Codec>;
  using point_t = typename view_t::point_t;
  using box_t = typename view_t::box_t;
  using coord_t = typename view_t::coord_t;
  static constexpr int kDim = view_t::kDim;
  using map_t = typename view_t::map_t;
  using request_t = Request<coord_t, kDim>;
  using result_t = Result<coord_t, kDim>;
  using snapshot_t = Snapshot<Index, Codec>;
  // The shard factory receives the shard's slot index at creation time, so
  // one service can run *heterogeneous* backends per shard (Index =
  // api::AnyIndex; e.g. SPaC-Z for hot low-id shards, the log-structured
  // baseline for cold ones). Slots created by split/merge ask the factory
  // with the index the new slot will occupy; a slot's replicas always come
  // from the same factory id, so live and standby stay the same backend.
  using factory_t = std::function<Index(std::size_t)>;

  GroupCommitter(ServiceConfig cfg, factory_t factory)
      : cfg_(cfg),
        factory_(std::move(factory)),
        map_(map_t::uniform(std::max<std::size_t>(1, cfg.initial_shards))) {
    slots_.resize(map_.num_shards());
    shard_versions_.resize(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].origin = i;
      slots_[i].live = make_index(i);
      slots_[i].standby = make_index(i);
      shard_versions_[i] = fresh_version();
    }
    publish();
  }

  ~GroupCommitter() {
    // Outstanding replay tasks reference replica handles; join them before
    // the slots go away. Task exceptions die with the committer.
    for (auto& s : slots_) {
      try {
        s.replay.join();
      } catch (...) {
      }
    }
  }

  // Reader entry point: pin the current view.
  std::shared_ptr<const view_t> acquire() const { return slot_.acquire(); }

  // Cheap observers: one relaxed atomic load each, no epoch pin, no
  // replica refcount traffic — the values of the last published view.
  std::uint64_t epoch() const { return epoch_.current(); }
  std::size_t size() const {
    return published_size_.load(std::memory_order_relaxed);
  }

  // Bulk load (replaces current contents). The shard map is recomputed
  // with equal-population boundaries at the code quantiles of the data —
  // the static analogue of what split/merge converges to under streaming
  // updates. One encode pass + one parallel sort yields both the
  // boundaries and contiguous per-shard slices, from which both replicas
  // of each shard are built.
  void load(const std::vector<point_t>& pts) {
    settle_all_replays();  // slots are about to be replaced wholesale
    const std::size_t n = pts.size();
    std::vector<Coded> coded = tabulate<Coded>(n, [&](std::size_t i) {
      return Coded{Codec::encode(pts[i]), pts[i]};
    });
    sample_sort(coded, [](const Coded& a, const Coded& b) {
      if (a.code != b.code) return a.code < b.code;
      return a.pt < b.pt;
    });
    std::vector<std::uint64_t> codes = tabulate<std::uint64_t>(
        n, [&](std::size_t i) { return coded[i].code; });
    map_ = map_t::from_sorted_codes(
        codes, std::max<std::size_t>(1, cfg_.initial_shards));
    const std::size_t k = map_.num_shards();
    slots_.clear();
    slots_.resize(k);  // move-only slots: no copy-fill
    parallel_for_shards(k, [&](std::size_t i) {
      // Shard i owns the contiguous sorted slice of codes in its range.
      const auto lo = std::lower_bound(codes.begin(), codes.end(),
                                       map_.lower_bound_of(i)) -
                      codes.begin();
      const auto hi = std::upper_bound(codes.begin(), codes.end(),
                                       map_.upper_bound_of(i)) -
                      codes.begin();
      std::vector<point_t> part = tabulate<point_t>(
          static_cast<std::size_t>(hi - lo), [&](std::size_t j) {
            return coded[static_cast<std::size_t>(lo) + j].pt;
          });
      slots_[i].origin = i;
      slots_[i].live = make_index(i);
      slots_[i].live->build(part);
      slots_[i].standby = make_index(i);
      slots_[i].standby->build(part);
    });
    // Wholesale replacement: every shard gets a fresh version and the
    // topology generation advances, invalidating all cached results.
    shard_versions_.resize(k);
    for (std::size_t i = 0; i < k; ++i) shard_versions_[i] = fresh_version();
    ++map_stamp_;
    rebalance();
    publish();
  }

  // Apply one drained FIFO group. Must be externally serialised.
  void commit(std::vector<request_t> group) {
    if (group.empty()) return;
    const std::size_t k = map_.num_shards();
    // Per-shard ordered runs of same-kind ops: coalesces into batches while
    // preserving each shard's FIFO op order exactly.
    std::vector<std::vector<OpRun>> runs(k);
    std::vector<request_t*> queries;
    bool has_updates = false;
    for (auto& req : group) {
      switch (req.kind) {
        case RequestKind::kInsert:
        case RequestKind::kDelete: {
          const bool is_delete = req.kind == RequestKind::kDelete;
          ++(is_delete ? stats_.ops_delete : stats_.ops_insert);
          auto& shard_runs = runs[map_.shard_of(req.pt)];
          if (shard_runs.empty() || shard_runs.back().is_delete != is_delete) {
            shard_runs.push_back(OpRun{is_delete, {}});
          }
          shard_runs.back().pts.push_back(req.pt);
          has_updates = true;
          break;
        }
        case RequestKind::kKnn:
          ++stats_.ops_knn;
          queries.push_back(&req);
          break;
        case RequestKind::kRangeCount:
          ++stats_.ops_range_count;
          queries.push_back(&req);
          break;
        case RequestKind::kRangeList:
          ++stats_.ops_range_list;
          queries.push_back(&req);
          break;
        case RequestKind::kBall:
          ++stats_.ops_ball;
          queries.push_back(&req);
          break;
      }
    }

    if (has_updates) {
      std::vector<std::uint64_t> yields(k, 0);
      parallel_for_shards(k, [&](std::size_t i) {
        if (runs[i].empty()) return;
        yields[i] = apply_shard(i, std::move(runs[i]));
        // Distinct indices per task; fresh_version() is atomic.
        shard_versions_[i] = fresh_version();
      });
      for (auto y : yields) stats_.grace_yields += y;
      // Untouched shards may still be replaying batch i-1 — that is the
      // pipeline's overlap, so they are NOT joined here. Moving a slot is
      // safe while its task runs (the task owns copies, never slot
      // pointers), and a split/merge that overwrites or erases a slot
      // joins that one task implicitly through AsyncTask's move-assign /
      // destructor.
      rebalance();
      publish();
      if (cfg_.pipelined_commits) spawn_replays();
    }

    const std::uint64_t epoch = stats_.epoch;
    // Answer queries against the (possibly just republished) current view.
    snapshot_t snap(acquire());
    parallel_for(
        0, queries.size(),
        [&](std::size_t qi) {
          request_t& req = *queries[qi];
          result_t res;
          res.epoch = epoch;
          switch (req.kind) {
            case RequestKind::kKnn:
              res.points = snap.knn(req.pt, req.k);
              break;
            case RequestKind::kRangeCount:
              res.count = snap.range_count(req.box);
              break;
            case RequestKind::kRangeList:
              res.points = snap.range_list(req.box);
              res.count = res.points.size();
              break;
            case RequestKind::kBall:
              res.points = snap.ball_list(req.pt, req.radius);
              res.count = res.points.size();
              break;
            default:
              break;
          }
          req.promise.set_value(std::move(res));
        },
        1);
    // Update futures resolve after publication: when the future is ready,
    // the op is visible to every subsequent snapshot.
    for (auto& req : group) {
      if (req.kind == RequestKind::kInsert || req.kind == RequestKind::kDelete) {
        result_t res;
        res.epoch = epoch;
        req.promise.set_value(std::move(res));
      }
    }
  }

  ServiceStats stats() const {
    ServiceStats s = stats_;
    s.replica_rebuilds = replica_rebuilds_.load(std::memory_order_relaxed);
    s.num_shards = slots_.size();
    s.shard_sizes.clear();
    s.shard_sizes.reserve(slots_.size());
    s.size_total = 0;
    for (const auto& slot : slots_) {
      s.shard_sizes.push_back(slot.live->size());
      s.size_total += slot.live->size();
    }
    return s;
  }

 private:
  // A maximal run of same-kind update ops, in FIFO order.
  struct OpRun {
    bool is_delete = false;
    std::vector<point_t> pts;
  };

  // A point with its routing code, the unit load() and split_shard() sort.
  struct Coded {
    std::uint64_t code;
    point_t pt;
  };

  // What a detached replay task reports back (shared with the slot so the
  // task stays self-contained if the slot moves in the meantime).
  struct ReplayOutcome {
    bool replayed = false;
    std::uint64_t yields = 0;
  };

  struct ShardSlot {
    std::shared_ptr<Index> live;     // state as of the last published epoch
    std::shared_ptr<Index> standby;  // lags live by exactly the pending log
    std::vector<OpRun> pending;      // runs applied to live but not standby
    // Factory id this slot's replicas were created with; replica rebuilds
    // reuse it so live and standby stay the same backend type even after
    // later splits/merges shifted the slot's position.
    std::size_t origin = 0;
    // Size at which the last split attempt failed (one giant equal-code
    // run). Skips re-paying flatten+sort every commit until the shard's
    // population actually changes.
    std::size_t unsplittable_at = 0;
    // Pipeline stage 2: the in-flight asynchronous replay of the pending
    // runs onto the standby, spawned right after publish. While a task is
    // in flight the runs live in `replay_runs` (shared with the closure —
    // moved there, not copied, and moved back into `pending` if the
    // replay fails); the task never holds a pointer into this slot, so a
    // slot is free to move while its task runs. `standby_caught_up`
    // records a successful replay: the standby equals live and is
    // quiescent.
    AsyncTask replay;
    std::shared_ptr<std::vector<OpRun>> replay_runs;
    std::shared_ptr<ReplayOutcome> replay_out;
    bool standby_caught_up = false;
  };

  std::shared_ptr<Index> make_index(std::size_t factory_id) const {
    return std::make_shared<Index>(factory_(factory_id));
  }

  // Replay + apply on the standby replica, then swap it live.
  std::uint64_t apply_shard(std::size_t i, std::vector<OpRun> group_runs) {
    ShardSlot& s = slots_[i];
    std::uint64_t yields = settle_replay(s);
    if (!s.standby_caught_up) {
      const GraceResult grace = await_quiescent(s.standby);
      yields += grace.iters;
      if (!grace.quiesced) {
        // A stale reader (possibly this very thread, holding a Snapshot
        // across a flush) pins the replica: abandon it and clone live,
        // which already contains the pending log.
        s.standby = make_index(s.origin);
        s.standby->build(s.live->flatten());
        s.pending.clear();
        ++replica_rebuilds_;
      }
    }
    Index& idx = *s.standby;
    for (const OpRun& run : s.pending) apply_run(idx, run);
    for (const OpRun& run : group_runs) apply_run(idx, run);
    std::swap(s.live, s.standby);
    s.pending = std::move(group_runs);
    s.standby_caught_up = false;  // the new standby is the just-retired live
    return yields;
  }

  // Join the slot's in-flight replay task (if any) and fold its outcome
  // into the slot: on success the pending log is already on the standby
  // and the grace period has passed; on failure the runs move back into
  // `pending` for the inline slow path. Returns the task's yields.
  std::uint64_t settle_replay(ShardSlot& s) {
    if (!s.replay.valid()) return 0;
    // Fold the outcome into the slot before rethrowing a task exception:
    // the pending log must survive a failed replay (same post-exception
    // state as the inline writer — live intact, pending intact, standby
    // possibly part-applied) instead of being silently dropped.
    std::exception_ptr err;
    try {
      s.replay.join();
    } catch (...) {
      err = std::current_exception();
    }
    std::uint64_t yields = 0;
    if (s.replay_out) {
      yields = s.replay_out->yields;
      if (!err && s.replay_out->replayed) {
        s.standby_caught_up = true;
      } else if (s.replay_runs) {
        s.pending = std::move(*s.replay_runs);
      }
      s.replay_out.reset();
    }
    s.replay_runs.reset();
    if (err) std::rethrow_exception(err);
    return yields;
  }

  // Join every in-flight replay task. Only needed when the slot *array*
  // is replaced wholesale (load); individual slot rebuilds join their own
  // task through AsyncTask move-assign/destruction.
  void settle_all_replays() {
    for (auto& s : slots_) stats_.grace_yields += settle_replay(s);
  }

  // Pipeline stage 2: spawn the asynchronous standby replays for every
  // shard the just-published commit touched. Runs after publish() so the
  // grace period the tasks wait out is the one the publication started.
  // With a sequential pool a spawn would execute inline — all cost (an
  // eager grace wait per commit), no overlap — so the writer falls back to
  // the classic lazy replay-on-next-commit there.
  void spawn_replays() {
    if (num_workers() <= 1) return;
    for (auto& s : slots_) {
      if (s.pending.empty() || s.replay.valid() || s.standby_caught_up) {
        continue;
      }
      s.replay_out = std::make_shared<ReplayOutcome>();
      // The runs MOVE into shared ownership (settle_replay moves them back
      // on failure); the standby handle is copied, so the grace wait
      // allows exactly one extra reference — the task's own.
      s.replay_runs =
          std::make_shared<std::vector<OpRun>>(std::move(s.pending));
      s.pending.clear();  // moved-from; make the empty state explicit
      s.replay = AsyncTask([out = s.replay_out, standby = s.standby,
                            runs = s.replay_runs] {
        // Smaller grace budget than the inline path (4096): a task that
        // cannot quiesce is parking a pool *worker* in the sleep loop, so
        // give up after ~50ms and let the next write retry inline with
        // the full budget. Uncontended replays exit in a few iterations
        // either way.
        const GraceResult grace =
            await_quiescent(standby, 1024, /*allowed_refs=*/2);
        out->yields = grace.iters;
        if (!grace.quiesced) return;
        for (const OpRun& run : *runs) apply_run(*standby, run);
        out->replayed = true;
      });
    }
  }

  static void apply_run(Index& idx, const OpRun& run) {
    if (run.pts.empty()) return;
    if (run.is_delete) {
      idx.batch_delete(run.pts);
    } else {
      idx.batch_insert(run.pts);
    }
  }

  // bp-forest style seat management: split overgrown shards at the median
  // code of their contents, merge adjacent underfull neighbours.
  void rebalance() {
    for (std::size_t i = 0; i < slots_.size();) {
      if (slots_[i].live->size() > cfg_.split_threshold &&
          slots_[i].live->size() != slots_[i].unsplittable_at &&
          map_.num_shards() < cfg_.max_shards) {
        if (split_shard(i)) {
          ++stats_.splits;
          continue;  // re-examine the left half (may still be overgrown)
        }
        slots_[i].unsplittable_at = slots_[i].live->size();
      }
      ++i;
    }
    const std::size_t merge_at = cfg_.effective_merge_threshold();
    const std::size_t min_shards = cfg_.effective_min_shards();
    for (std::size_t i = 0; i + 1 < slots_.size();) {
      const std::size_t combined =
          slots_[i].live->size() + slots_[i + 1].live->size();
      if (combined < merge_at && slots_.size() > min_shards) {
        merge_shards(i);
        ++stats_.merges;
        continue;  // the merged shard may absorb the next neighbour too
      }
      ++i;
    }
  }

  bool split_shard(std::size_t i) {
    const std::vector<point_t> pts = slots_[i].live->flatten();
    const std::size_t n = pts.size();
    if (n < 2) return false;
    // Codes are computed once and sorted with the parallel sample sort:
    // this runs under the commit lock on a threshold-sized shard, so a
    // sequential comparison sort (encoding per comparison) would stall
    // every queued client.
    std::vector<Coded> coded = tabulate<Coded>(n, [&](std::size_t j) {
      return Coded{Codec::encode(pts[j]), pts[j]};
    });
    sample_sort(coded, [](const Coded& a, const Coded& b) {
      if (a.code != b.code) return a.code < b.code;
      return a.pt < b.pt;
    });
    // Cut at the median code; push the cut right past an equal-code run so
    // the boundary separates (all codes <= boundary go left). If the run
    // reaches the end of the shard, cut just before the run instead — a
    // hot duplicated key keeps its own (new) shard and the rest splits
    // off. Only a shard that is one single equal-code run cannot split.
    std::size_t mid = n / 2;
    std::uint64_t boundary = coded[mid - 1].code;
    while (mid < n && coded[mid].code == boundary) ++mid;
    if (mid == n) {
      std::size_t run_start = n / 2;
      while (run_start > 0 && coded[run_start - 1].code == boundary) {
        --run_start;
      }
      if (run_start == 0) return false;  // whole shard is one code
      mid = run_start;
      boundary = coded[mid - 1].code;
    }
    if (!map_.split(i, boundary)) return false;
    std::vector<point_t> left = tabulate<point_t>(
        mid, [&](std::size_t j) { return coded[j].pt; });
    std::vector<point_t> right = tabulate<point_t>(
        n - mid, [&](std::size_t j) { return coded[mid + j].pt; });
    // Fresh backends from the factory at the slots' new positions: with a
    // heterogeneous factory a split migrates points across backend types
    // through the common flatten()/build() surface.
    ShardSlot ls = build_slot(left, i), rs = build_slot(right, i + 1);
    slots_[i] = std::move(ls);
    slots_.insert(slots_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  std::move(rs));
    shard_versions_[i] = fresh_version();
    shard_versions_.insert(
        shard_versions_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
        fresh_version());
    ++map_stamp_;  // topology changed: positional versions mean new ranges
    return true;
  }

  void merge_shards(std::size_t i) {
    std::vector<point_t> pts = slots_[i].live->flatten();
    std::vector<point_t> rhs = slots_[i + 1].live->flatten();
    pts.insert(pts.end(), rhs.begin(), rhs.end());
    map_.merge(i);
    slots_[i] = build_slot(pts, i);
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    shard_versions_[i] = fresh_version();
    shard_versions_.erase(shard_versions_.begin() +
                          static_cast<std::ptrdiff_t>(i) + 1);
    ++map_stamp_;
  }

  ShardSlot build_slot(const std::vector<point_t>& pts,
                       std::size_t factory_id) const {
    ShardSlot s;
    s.origin = factory_id;
    s.live = make_index(factory_id);
    s.live->build(pts);
    s.standby = make_index(factory_id);
    s.standby->build(pts);
    return s;
  }

  std::uint64_t publish() {
    auto v = std::make_shared<view_t>();
    // The writer is externally serialised, so current()+1 is the epoch
    // advance() will return below.
    const std::uint64_t next = epoch_.current() + 1;
    v->epoch = next;
    v->map = map_;
    v->shard_versions = shard_versions_;
    v->map_stamp = map_stamp_;
    v->shards.reserve(slots_.size());
    std::size_t total = 0;
    for (const auto& s : slots_) {
      total += s.live->size();
      v->shards.push_back(s.live);
    }
    // Publish the view first, then bump the cheap observers: a reader that
    // sees epoch()/size() report commit N is guaranteed snapshot() returns
    // view N or newer, never older (the converse — a snapshot briefly
    // newer than epoch() — is benign: both are monotone).
    slot_.publish(std::move(v));
    epoch_.advance();
    published_size_.store(total, std::memory_order_relaxed);
    stats_.epoch = next;
    ++stats_.commits;
    return stats_.epoch;
  }

  // A fresh, never-reused shard version. Atomic because the parallel
  // per-shard apply stamps touched shards concurrently.
  std::uint64_t fresh_version() {
    return next_version_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  ServiceConfig cfg_;
  factory_t factory_;
  map_t map_;
  std::vector<ShardSlot> slots_;
  // Per-shard content versions (parallel to slots_) and the topology
  // generation — published with every view, keyed on by the query cache.
  std::vector<std::uint64_t> shard_versions_;
  std::uint64_t map_stamp_ = 0;
  std::atomic<std::uint64_t> next_version_{0};
  EpochCounter epoch_;
  SnapshotSlot<view_t> slot_;
  ServiceStats stats_;
  // Incremented from the parallel per-shard apply, hence atomic.
  std::atomic<std::uint64_t> replica_rebuilds_{0};
  // Total population of the last published view; read lock-free by
  // SpatialService::size() without constructing a Snapshot.
  std::atomic<std::size_t> published_size_{0};
};

}  // namespace psi::service
