// PSI-Lib service layer: observable counters.
//
// A ServiceStats value is a consistent sample taken by the writer under the
// commit lock; `json()` renders the flat JSON object the benches emit (one
// line per sample, same shape as bench/fig11_service_throughput.cpp) so
// BENCH_*.json trajectories can track the service across PRs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "psi/telemetry/histogram.h"
#include "psi/telemetry/metrics.h"

namespace psi::service {

struct ServiceStats {
  // Schema version of json(). Bump when fields change meaning or move;
  // adding fields is compatible and does not bump it.
  // v5: relocatable-arena fields (arena_bytes / arena_chunks /
  // handoff_raw_copies; core/arena).
  std::uint64_t stats_version = 5;

  std::uint64_t epoch = 0;        // published commit epochs
  std::uint64_t commits = 0;      // commit groups applied (== epoch)
  std::uint64_t splits = 0;       // shard splits performed
  std::uint64_t merges = 0;       // shard merges performed
  std::uint64_t grace_yields = 0; // scheduler yields spent in grace periods
  std::uint64_t replica_rebuilds = 0;  // standbys abandoned to pinned readers

  // Relocatable-arena accounting (v5; zero for non-arena backends).
  std::size_t arena_bytes = 0;   // committed arena bytes, live replicas
  std::size_t arena_chunks = 0;  // backing chunks under those bytes
  // Raw arena-image copies: replica clones plus handoff/install adopts —
  // each one replaced a flatten + per-point rebuild.
  std::uint64_t handoff_raw_copies = 0;

  std::uint64_t ops_insert = 0;
  std::uint64_t ops_delete = 0;
  std::uint64_t ops_knn = 0;
  std::uint64_t ops_range_count = 0;
  std::uint64_t ops_range_list = 0;
  std::uint64_t ops_ball = 0;

  // Service-level query cache (query_cache.h; the *_cached read path).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Hits served across an epoch boundary — commits happened, but none
  // touched the entry's covering shards (per-shard version keying).
  std::uint64_t cache_cross_epoch_hits = 0;
  // List results answered but not admitted (size-aware admission).
  std::uint64_t cache_oversize_skips = 0;
  // Lookups abandoned because the snapshot's version vector was torn by a
  // concurrent publish (distributed piggyback validation).
  std::uint64_t cache_torn_skips = 0;
  std::size_t cache_bytes = 0;  // bytes currently held by cached lists

  // Read consistency + wire streaming (read_options.h; v4 fields).
  std::uint64_t pinned_reads = 0;          // reads served at a pinned epoch
  std::uint64_t epoch_retired_errors = 0;  // pins past the retention horizon
  // Wire v3 streamed-result accounting (distributed facade only; the
  // in-process paths never chunk and leave these at zero).
  std::uint64_t stream_chunks = 0;             // kQueryChunk frames received
  std::uint64_t stream_backpressure_waits = 0; // host stalls awaiting credit

  std::size_t num_shards = 0;
  std::size_t size_total = 0;            // points currently indexed
  std::vector<std::size_t> shard_sizes;  // per-shard populations

  // Durability (all zero when the WAL is not armed).
  std::uint64_t wal_appends = 0;  // commit records appended
  std::uint64_t wal_bytes = 0;    // framed bytes written to the log
  double recovery_ms = 0;         // startup recovery time (load + replay)
  // Pre-publish fsync latency (empty under PSI_TELEMETRY_DISABLED).
  telemetry::LatencySummary wal_fsync;

  // Telemetry (all empty under PSI_TELEMETRY_DISABLED).
  // End-to-end queued-op latency per request kind, indexed by
  // telemetry::QueuedOp; name via telemetry::queued_op_name().
  std::vector<telemetry::LatencySummary> latency;
  // Commit-pipeline stage timings, indexed by telemetry::Stage.
  std::vector<telemetry::LatencySummary> stages;
  // Per-shard heat, positionally aligned with shard_sizes: raw cumulative
  // read/write counters (keyed by stable shard key) and the per-epoch
  // EWMA-decayed rate the autopilot consumes.
  std::vector<telemetry::HeatEntry> shard_heat;
  std::vector<double> shard_heat_decayed;

  // The n hottest shards by decayed heat: (shard index, decayed heat),
  // hottest first.
  std::vector<std::pair<std::size_t, double>> top_hot_shards(
      std::size_t n) const;

  std::uint64_t ops_updates() const { return ops_insert + ops_delete; }
  std::uint64_t ops_queries() const {
    return ops_knn + ops_range_count + ops_range_list + ops_ball;
  }

  std::size_t max_shard_size() const;
  std::size_t min_shard_size() const;

  // Shard-population imbalance: max/mean (1.0 = perfectly even).
  double imbalance() const;

  // One-line JSON object with every counter above.
  std::string json() const;
};

}  // namespace psi::service
