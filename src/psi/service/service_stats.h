// PSI-Lib service layer: observable counters.
//
// A ServiceStats value is a consistent sample taken by the writer under the
// commit lock; `json()` renders the flat JSON object the benches emit (one
// line per sample, same shape as bench/fig11_service_throughput.cpp) so
// BENCH_*.json trajectories can track the service across PRs.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace psi::service {

struct ServiceStats {
  std::uint64_t epoch = 0;        // published commit epochs
  std::uint64_t commits = 0;      // commit groups applied (== epoch)
  std::uint64_t splits = 0;       // shard splits performed
  std::uint64_t merges = 0;       // shard merges performed
  std::uint64_t grace_yields = 0; // scheduler yields spent in grace periods
  std::uint64_t replica_rebuilds = 0;  // standbys abandoned to pinned readers

  std::uint64_t ops_insert = 0;
  std::uint64_t ops_delete = 0;
  std::uint64_t ops_knn = 0;
  std::uint64_t ops_range_count = 0;
  std::uint64_t ops_range_list = 0;
  std::uint64_t ops_ball = 0;

  // Service-level query cache (query_cache.h; the *_cached read path).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Hits served across an epoch boundary — commits happened, but none
  // touched the entry's covering shards (per-shard version keying).
  std::uint64_t cache_cross_epoch_hits = 0;
  // List results answered but not admitted (size-aware admission).
  std::uint64_t cache_oversize_skips = 0;
  std::size_t cache_bytes = 0;  // bytes currently held by cached lists

  std::size_t num_shards = 0;
  std::size_t size_total = 0;            // points currently indexed
  std::vector<std::size_t> shard_sizes;  // per-shard populations

  std::uint64_t ops_updates() const { return ops_insert + ops_delete; }
  std::uint64_t ops_queries() const {
    return ops_knn + ops_range_count + ops_range_list + ops_ball;
  }

  std::size_t max_shard_size() const;
  std::size_t min_shard_size() const;

  // Shard-population imbalance: max/mean (1.0 = perfectly even).
  double imbalance() const;

  // One-line JSON object with every counter above.
  std::string json() const;
};

}  // namespace psi::service
