// PSI-Lib service layer: the façade.
//
// SpatialService<Index> turns any single-writer batch-dynamic index of the
// library (anything satisfying psi::api::BatchDynamicIndex — SpacHTree,
// SpacZTree, POrthTree, PkdTree, ZdTree, ..., or the type-erased
// api::AnyIndex) into a concurrent, sharded service:
//
//   * any number of client threads submit() mixed updates and queries and
//     get std::futures back;
//   * one group-commit writer drains the queue, coalesces the updates into
//     per-shard batches, applies them through the index's own batch_insert /
//     batch_delete on the fork-join scheduler, and publishes a new epoch
//     (group_commit.h);
//   * readers can bypass the queue entirely: snapshot() pins the current
//     epoch with one atomic load and serves knn/range queries lock-free
//     against it (snapshot.h) — readers never block the writer and vice
//     versa.
//
// Two driving modes:
//   * background (start()/stop()): a dedicated committer thread batches
//     whatever accumulates between wake-ups — the production shape;
//   * manual (no start()): clients call flush() to pump the queue
//     synchronously — deterministic, used by the unit tests.
//
// Consistency contract: a query submitted through the queue observes every
// update drained in its own commit group and all earlier groups (updates of
// one group apply before its queries, in FIFO submission order per shard).
// A snapshot() observes exactly the last published epoch. Update futures
// resolve with the epoch that made the op visible.
//
// Caveat: holding a Snapshot pins its epoch's replicas. The writer never
// blocks on that (bounded grace period, then replica rebuild), but pinning
// snapshots across many commits costs rebuild work — prefer short-lived
// snapshots under write-heavy traffic.
//
// Heterogeneous services: the shard factory receives the shard id, so with
// Index = api::AnyIndex different shards can run different backends from
// one factory (hot shards on SPaC-Z, cold shards on the log-structured
// baseline; see examples/index_advisor.cpp). Nullary factories keep
// working — they are adapted to ignore the id.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "psi/api/read_options.h"
#include "psi/durability/checkpoint.h"
#include "psi/durability/recovery.h"
#include "psi/service/group_commit.h"
#include "psi/service/query_cache.h"
#include "psi/service/request_queue.h"
#include "psi/service/service_stats.h"
#include "psi/service/snapshot.h"
#include "psi/sfc/codec.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/registry.h"
#include "psi/telemetry/trace.h"

namespace psi::service {

template <typename Index,
          typename Codec = sfc::MortonCodec<typename Index::point_t::coord_t,
                                            Index::point_t::kDim>>
class SpatialService {
 public:
  using committer_t = GroupCommitter<Index, Codec>;
  using point_t = typename committer_t::point_t;
  using box_t = typename committer_t::box_t;
  using coord_t = typename committer_t::coord_t;
  static constexpr int kDim = committer_t::kDim;
  using request_t = Request<coord_t, kDim>;
  using result_t = Result<coord_t, kDim>;
  using future_t = std::future<result_t>;
  using snapshot_t = Snapshot<Index, Codec>;
  // Per-shard factory: Index(std::size_t shard_id). See group_commit.h.
  using factory_t = typename committer_t::factory_t;

  explicit SpatialService(ServiceConfig cfg = {})
      : cfg_(cfg),
        factory_([](std::size_t) { return Index(); }),
        committer_(cfg, factory_),
        cache_(cfg.cache_entries, cfg.cache_max_entry_bytes) {
    init_durability();
    register_arena_gauges();
  }

  // Accepts either a per-shard factory Index(std::size_t) or a legacy
  // nullary factory Index() (adapted to ignore the shard id).
  template <typename Factory>
    requires std::is_invocable_r_v<Index, Factory&, std::size_t> ||
             std::is_invocable_r_v<Index, Factory&>
  SpatialService(ServiceConfig cfg, Factory factory)
      : cfg_(cfg),
        factory_(adapt_factory(std::move(factory))),
        committer_(cfg, factory_),
        cache_(cfg.cache_entries, cfg.cache_max_entry_bytes) {
    init_durability();
    register_arena_gauges();
  }

  ~SpatialService() {
    stop();
    flush();  // resolve every outstanding future before promises die
  }

  SpatialService(const SpatialService&) = delete;
  SpatialService& operator=(const SpatialService&) = delete;

  // -------------------------------------------------------------------
  // Lifecycle
  // -------------------------------------------------------------------

  // Bulk-load initial contents (replaces current data). Call before
  // serving traffic. With durability armed, a checkpoint follows: the WAL
  // has no load record kind, so the loaded baseline is made durable as a
  // snapshot (a crash between load and checkpoint recovers the previous
  // state — build() hasn't returned yet, so nothing was acknowledged).
  void build(const std::vector<point_t>& pts) {
    {
      std::lock_guard<std::mutex> g(commit_mu_);
      committer_.load(pts);
    }
    if (wal_.is_open()) checkpoint();
  }

  // Write an epoch-stamped per-shard snapshot of the current published
  // view and truncate WAL segments below it (durability/checkpoint.h).
  // The commit lock is held only to pin the view and rotate the log; the
  // file writes run against the RCU-retained snapshots with no writer
  // stall. No-op unless durability is armed.
  void checkpoint() {
    if (!wal_.is_open()) return;
    // One checkpoint at a time: concurrent manual + auto checkpoints would
    // interleave their shard files and manifests.
    std::lock_guard<std::mutex> ck(checkpoint_mu_);
    std::shared_ptr<const typename committer_t::view_t> view;
    std::uint64_t watermark = 0;
    {
      std::lock_guard<std::mutex> g(commit_mu_);
      view = committer_.acquire();
      watermark = wal_.rotate();
    }
    psi::durability::Manifest m;
    m.epoch = view->epoch;
    m.watermark = watermark;
    const std::size_t k = view->shards.size();
    std::vector<psi::durability::CheckpointShard<coord_t, kDim>> shards;
    m.shards.reserve(k);
    shards.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      psi::durability::ManifestShard s;
      s.key = view->shard_keys[i];
      s.version = view->shard_versions[i];
      s.factory_id = i;
      m.shards.push_back(std::move(s));
      // Relocatable backends snapshot as raw arena images — a header +
      // chunk memcpy instead of flatten + per-point encode.
      psi::durability::CheckpointShard<coord_t, kDim> data;
      if (index_relocatable(*view->shards[i])) {
        data.image = serialize_index_arena(*view->shards[i]);
      } else {
        data.pts = view->shards[i]->flatten();
      }
      shards.push_back(std::move(data));
    }
    psi::durability::write_checkpoint<coord_t, kDim>(
        cfg_.durability.dir, std::move(m), shards, cfg_.durability.fsync);
    wal_.truncate_below(watermark);
    last_checkpoint_epoch_.store(view->epoch, std::memory_order_relaxed);
  }

  // Launch the background committer thread. Idempotent; restartable after
  // stop(). start/stop may be called from any thread: lifecycle_mu_ is
  // held across the whole transition (including the join), so a racing
  // start() cannot overwrite a still-joinable thread handle. The commit
  // loop itself only reads the atomic flag — it never takes lifecycle_mu_,
  // so holding it across join cannot deadlock.
  void start() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (running_.load(std::memory_order_acquire)) return;
    queue_.reopen();  // a prior stop() closed it; wait_* must block again
    running_.store(true, std::memory_order_release);
    committer_thread_ = std::thread([this] { commit_loop(); });
  }

  // Stop the background committer and drain whatever is still queued.
  void stop() {
    std::lock_guard<std::mutex> g(lifecycle_mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    running_.store(false, std::memory_order_release);
    queue_.close();  // wakes the committer out of wait_nonempty
    committer_thread_.join();
    flush();
  }

  // Synchronously commit everything queued so far. Safe concurrently with
  // the background thread (one commit mutex serialises all writers); on
  // return, every request submitted happens-before flush() has resolved.
  void flush() {
    PSI_TRACE_SPAN("service.flush");
    {
      std::lock_guard<std::mutex> g(commit_mu_);
      for (;;) {
        auto group = drain_timed();
        if (group.empty()) break;
        committer_.commit(std::move(group));
      }
    }
    maybe_auto_checkpoint();
  }

  // -------------------------------------------------------------------
  // Client API (any thread)
  // -------------------------------------------------------------------

  future_t submit(request_t req) { return queue_.push(std::move(req)); }

  future_t submit_insert(const point_t& p) {
    return submit(request_t::insert(p));
  }
  future_t submit_delete(const point_t& p) {
    return submit(request_t::remove(p));
  }
  future_t submit_knn(const point_t& q, std::size_t k) {
    return submit(request_t::knn(q, k));
  }
  future_t submit_range_count(const box_t& b) {
    return submit(request_t::range_count(b));
  }
  future_t submit_range_list(const box_t& b) {
    return submit(request_t::range_list(b));
  }
  // Ball (radius) query: resolves with the points within `radius` of q.
  future_t submit_ball(const point_t& q, double radius) {
    return submit(request_t::ball(q, radius));
  }

  // Bulk submission: one queue lock for the whole client batch.
  std::vector<future_t> submit_insert_batch(const std::vector<point_t>& pts) {
    std::vector<request_t> reqs;
    reqs.reserve(pts.size());
    for (const auto& p : pts) reqs.push_back(request_t::insert(p));
    return queue_.push_bulk(std::move(reqs));
  }
  std::vector<future_t> submit_delete_batch(const std::vector<point_t>& pts) {
    std::vector<request_t> reqs;
    reqs.reserve(pts.size());
    for (const auto& p : pts) reqs.push_back(request_t::remove(p));
    return queue_.push_bulk(std::move(reqs));
  }

  // Lock-free read path: pin the current epoch and query it directly.
  snapshot_t snapshot() const { return snapshot_t(committer_.acquire()); }

  // Pinned read path: the retained view of exactly `epoch` — repeatable,
  // snapshot-consistent "query as of epoch E" over the last
  // cfg.retained_epochs publications. Throws api::EpochRetired past the
  // retention horizon (the committer drops old views rather than ever
  // blocking on a pinned reader).
  snapshot_t snapshot_at(std::uint64_t epoch) const {
    auto view = committer_.acquire_at(epoch);
    if (view == nullptr) {
      epoch_retired_errors_.fetch_add(1, std::memory_order_relaxed);
      retired_ctr_->inc();
      throw api::EpochRetired(epoch);
    }
    pinned_reads_.fetch_add(1, std::memory_order_relaxed);
    pinned_ctr_->inc();
    return snapshot_t(std::move(view));
  }

  // -------------------------------------------------------------------
  // The unified read entry point
  // -------------------------------------------------------------------
  //
  // One query surface for every shape × consistency × cache combination:
  // build an api::QueryDesc, pick api::ReadOptions, stream into a sink.
  // List kinds stream their matches into `sink` and return the number of
  // points streamed; count kinds never touch the sink and return the
  // count. The legacy *_cached methods below are thin adapters over the
  // same machinery.

  using desc_t = typename snapshot_t::desc_t;

  template <typename Sink>
  std::size_t query(const desc_t& q, const api::ReadOptions& opts,
                    Sink&& sink) const {
    snapshot_t snap =
        opts.is_pinned() ? snapshot_at(opts.pinned_epoch) : snapshot();
    if (opts.cache != api::CachePolicy::kUse) return snap.query(q, sink);
    if (!q.is_list()) return cached_count(snap, q);
    auto pts = cached_list(snap, q);
    std::size_t n = 0;
    for (const auto& p : *pts) {
      ++n;
      if (!api::sink_accept(sink, p)) break;
    }
    return n;
  }

  // Count-only convenience (no sink to thread through).
  std::size_t query(const desc_t& q, const api::ReadOptions& opts = {}) const {
    auto ignore = [](const point_t&) {};
    return query(q, opts, ignore);
  }

  // -------------------------------------------------------------------
  // Cached read path (version-keyed query cache, query_cache.h)
  // -------------------------------------------------------------------
  //
  // Memoized adapters over query() with CachePolicy::kUse. Entries are
  // keyed on the query plus the *versions of the shards it was routed to*
  // (and the shard-map generation), so a commit only invalidates the
  // entries whose covering shards it touched — repeat queries over cold
  // regions keep hitting across epochs of write traffic elsewhere. A hit
  // is always exactly what an uncached snapshot query would return right
  // now. List hits share one materialised vector across callers; results
  // above the admission budget (cfg.cache_max_entry_bytes) are answered
  // but not cached. Counters (hits/misses/cross-epoch hits/oversize
  // skips/bytes) surface in stats().

  std::shared_ptr<const std::vector<point_t>> range_list_cached(
      const box_t& query) const {
    auto snap = snapshot();
    return cached_list(snap, desc_t::range_list(query));
  }

  std::size_t range_count_cached(const box_t& query) const {
    auto snap = snapshot();
    return cached_count(snap, desc_t::range_count(query));
  }

  std::shared_ptr<const std::vector<point_t>> ball_list_cached(
      const point_t& q, double radius) const {
    auto snap = snapshot();
    return cached_list(snap, desc_t::ball_list(q, radius));
  }

  std::size_t ball_count_cached(const point_t& q, double radius) const {
    auto snap = snapshot();
    return cached_count(snap, desc_t::ball_count(q, radius));
  }

  std::shared_ptr<const std::vector<point_t>> knn_cached(
      const point_t& q, std::size_t k) const {
    auto snap = snapshot();
    return cached_list(snap, desc_t::knn(q, k));
  }

  // Cheap observers: one atomic load on the committer — no epoch pin, no
  // replica refcount traffic, no Snapshot construction.
  std::size_t size() const { return committer_.size(); }
  std::uint64_t epoch() const { return committer_.epoch(); }
  std::size_t queued() const { return queue_.size(); }

  ServiceStats stats() const {
    std::lock_guard<std::mutex> g(commit_mu_);
    ServiceStats s = committer_.stats();
    s.recovery_ms = recovery_ms_;
    s.cache_hits = cache_.hits();
    s.cache_misses = cache_.misses();
    s.cache_cross_epoch_hits = cache_.cross_epoch_hits();
    s.cache_oversize_skips = cache_.oversize_skips();
    s.cache_bytes = cache_.bytes();
    s.pinned_reads = pinned_reads_.load(std::memory_order_relaxed);
    s.epoch_retired_errors =
        epoch_retired_errors_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  using cache_key_t = QueryKey<coord_t, kDim>;

  // The one body behind every cached list read (range/ball/knn): key the
  // query, validate coverage, compute through the snapshot's materialising
  // path on a miss. kNN coverage is the whole version vector — pruned by
  // distance, not routing — so any commit that changed any shard
  // invalidates it; a shardless view must yield an *inverted* run (the
  // empty-coverage shape degenerate boxes produce), not {0,0}, which would
  // slice one element out of an empty version vector.
  std::shared_ptr<const std::vector<point_t>> cached_list(
      const snapshot_t& snap, const desc_t& q) const {
    using Kind = typename desc_t::Kind;
    const std::uint64_t start =
        telemetry::kEnabled ? telemetry::now_ns() : 0;
    const cache_key_t key = cache_key_of(q);
    const CacheCoverage cov = coverage(snap, run_of(snap, q));
    if (auto hit = cache_.find_list(key, cov)) {
      record_cache(start, /*hit=*/true);
      return hit;
    }
    std::vector<point_t> out;
    switch (q.kind) {
      case Kind::kRangeList:
        out = snap.range_list(q.box);
        break;
      case Kind::kBallList:
        out = snap.ball_list(q.center, q.radius);
        break;
      case Kind::kKnn:
        out = snap.knn(q.center, q.k);
        break;
      default:
        break;
    }
    auto pts = std::make_shared<const std::vector<point_t>>(std::move(out));
    cache_.put_list(key, cov, pts);
    record_cache(start, /*hit=*/false);
    return pts;
  }

  // ... and every cached count read (range/ball).
  std::size_t cached_count(const snapshot_t& snap, const desc_t& q) const {
    using Kind = typename desc_t::Kind;
    const std::uint64_t start =
        telemetry::kEnabled ? telemetry::now_ns() : 0;
    const cache_key_t key = cache_key_of(q);
    const CacheCoverage cov = coverage(snap, run_of(snap, q));
    if (auto hit = cache_.find_count(key, cov)) {
      record_cache(start, /*hit=*/true);
      return *hit;
    }
    const std::size_t count = q.kind == Kind::kRangeCount
                                  ? snap.range_count(q.box)
                                  : snap.ball_count(q.center, q.radius);
    cache_.put_count(key, cov, count);
    record_cache(start, /*hit=*/false);
    return count;
  }

  static cache_key_t cache_key_of(const desc_t& q) {
    using Kind = typename desc_t::Kind;
    switch (q.kind) {
      case Kind::kRangeList:
      case Kind::kRangeCount:
        return cache_key_t::range(q.box);
      case Kind::kBallList:
      case Kind::kBallCount:
        return cache_key_t::ball(q.center, q.radius);
      case Kind::kKnn:
        return cache_key_t::knn(q.center, q.k);
    }
    return cache_key_t::range(q.box);
  }

  // The routed shard run whose versions a cached result depends on.
  static std::pair<std::size_t, std::size_t> run_of(const snapshot_t& snap,
                                                    const desc_t& q) {
    using Kind = typename desc_t::Kind;
    switch (q.kind) {
      case Kind::kRangeList:
      case Kind::kRangeCount:
        return snap.shard_run_for_box(q.box);
      case Kind::kBallList:
      case Kind::kBallCount:
        return snap.shard_run_for_ball(q.center, q.radius);
      case Kind::kKnn:
        break;
    }
    const std::size_t n = snap.num_shards();
    return n == 0 ? std::pair<std::size_t, std::size_t>{1, 0}
                  : std::pair<std::size_t, std::size_t>{0, n - 1};
  }

  // The validity key of a cached result: the snapshot's map generation and
  // the versions of the routed shard run (see make_coverage, query_cache.h
  // — shared with the distributed client, which builds the identical
  // coverage from its route view + response piggybacks).
  static CacheCoverage coverage(const snapshot_t& snap,
                                std::pair<std::size_t, std::size_t> run) {
    return make_coverage(snap.epoch(), snap.map_stamp(), run,
                         snap.shard_versions());
  }

  template <typename Factory>
  static factory_t adapt_factory(Factory f) {
    if constexpr (std::is_invocable_r_v<Index, Factory&, std::size_t>) {
      return factory_t(std::move(f));
    } else {
      return [g = std::move(f)](std::size_t) { return g(); };
    }
  }

  void commit_loop() {
    const auto interval =
        std::chrono::milliseconds(std::max(1, cfg_.commit_interval_ms));
    while (running_.load(std::memory_order_acquire)) {
      if (!queue_.wait_nonempty(interval)) continue;
      {
        std::lock_guard<std::mutex> g(commit_mu_);
        auto group = drain_timed();
        if (!group.empty()) {
          PSI_TRACE_SPAN("service.commit_group");
          committer_.commit(std::move(group));
        }
      }
      maybe_auto_checkpoint();
    }
  }

  // Startup recovery + WAL arming (no-op unless cfg.durability is armed).
  // Order matters: recover FIRST (the replayed log must not be re-logged),
  // then open the writer (always a fresh segment), then checkpoint so the
  // replayed tail collapses into a snapshot and old segments truncate.
  void init_durability() {
    if (!cfg_.durability.armed()) return;
    const auto t0 = std::chrono::steady_clock::now();
    const psi::durability::ArenaDecoder<coord_t, kDim> decoder =
        [this](std::uint64_t factory_id,
               const std::vector<std::uint8_t>& image) {
          Index idx = factory_(static_cast<std::size_t>(factory_id));
          adopt_index_arena(idx, image.data(), image.size());
          return idx.flatten();
        };
    auto rec = psi::durability::recover<coord_t, kDim>(
        cfg_.durability.dir, std::numeric_limits<std::uint64_t>::max(),
        decoder);
    if (rec.found) {
      // The committer's bulk load repartitions, so images decode to points
      // first (recover() already materialised any shard the WAL tail
      // touched).
      rec.materialize(decoder);
      std::lock_guard<std::mutex> g(commit_mu_);
      committer_.load(rec.all_points());
    }
    wal_.open(cfg_.durability.dir, cfg_.durability);
    committer_.set_wal(&wal_);
    checkpoint();
    recovery_ms_ = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    telemetry::StatsRegistry::instance().register_gauge(
        "psi_recovery_ms",
        [v = static_cast<std::uint64_t>(recovery_ms_)] { return v; });
  }

  // Prometheus exposition of the relocatable-arena footprint (stats v5).
  // The callbacks own a shared_ptr to the committer's atomic gauge block,
  // so they stay valid after this service is torn down (registry.h
  // contract: gauges fire forever, from any thread).
  void register_arena_gauges() {
    auto& reg = telemetry::StatsRegistry::instance();
    auto g = committer_.arena_gauges();
    reg.register_gauge("psi_arena_bytes", [g] {
      return static_cast<std::uint64_t>(
          g->bytes.load(std::memory_order_relaxed));
    });
    reg.register_gauge("psi_arena_chunks", [g] {
      return static_cast<std::uint64_t>(
          g->chunks.load(std::memory_order_relaxed));
    });
    reg.register_gauge("psi_handoff_raw_copies", [g] {
      return g->raw_copies.load(std::memory_order_relaxed);
    });
  }

  void maybe_auto_checkpoint() {
    if (!wal_.is_open() || cfg_.durability.checkpoint_every == 0) return;
    const std::uint64_t last =
        last_checkpoint_epoch_.load(std::memory_order_relaxed);
    if (committer_.epoch() - last >= cfg_.durability.checkpoint_every) {
      checkpoint();
    }
  }

  // Queue drain under the commit lock, timed as the pipeline's drain stage.
  std::vector<request_t> drain_timed() {
    telemetry::ScopedTimer t(
        &committer_.metrics()->stage_hist(telemetry::Stage::kDrain));
    return queue_.drain(cfg_.max_group);
  }

  // Record a cached read's service time into the hit or miss histogram.
  void record_cache(std::uint64_t start_ns, bool hit) const {
    if constexpr (!telemetry::kEnabled) return;
    auto& m = *committer_.metrics();
    (hit ? m.cache_hit : m.cache_miss)
        .record(telemetry::now_ns() - start_ns);
  }

  ServiceConfig cfg_;
  // Kept (besides the committer's own copy) for recovery: decoding an
  // arena checkpoint image back to points needs a same-backend index.
  // Declared before committer_ so the constructor can hand it a copy.
  factory_t factory_;
  RequestQueue<coord_t, kDim> queue_;
  // Serialises every writer into the committer: the background thread,
  // flush() callers, build(), stats().
  mutable std::mutex commit_mu_;
  committer_t committer_;
  // Epoch-keyed result cache for the *_cached read path (thread-safe).
  mutable QueryCache<coord_t, kDim> cache_;
  // Pinned-read accounting (ServiceStats v4), mirrored into the global
  // StatsRegistry for Prometheus exposition. The registry references are
  // stable forever (leaked singleton, node-based map).
  mutable std::atomic<std::uint64_t> pinned_reads_{0};
  mutable std::atomic<std::uint64_t> epoch_retired_errors_{0};
  telemetry::Counter* pinned_ctr_ =
      &telemetry::StatsRegistry::instance().counter("psi_pinned_reads");
  telemetry::Counter* retired_ctr_ =
      &telemetry::StatsRegistry::instance().counter(
          "psi_epoch_retired_errors");

  // Durability (all idle unless cfg_.durability is armed). The committer
  // holds a raw pointer to wal_; appends/syncs happen under commit_mu_,
  // rotation takes the same lock, so the single-writer contract holds.
  psi::durability::WalWriter wal_;
  std::mutex checkpoint_mu_;
  std::atomic<std::uint64_t> last_checkpoint_epoch_{0};
  double recovery_ms_ = 0;

  // Serialises whole start()/stop() transitions; never taken by the
  // committer thread itself.
  std::mutex lifecycle_mu_;
  std::atomic<bool> running_{false};
  std::thread committer_thread_;
};

}  // namespace psi::service
