// PSI-Lib service layer: MPMC request queue.
//
// Client threads push mixed update/query requests; the single group-commit
// writer drains them in FIFO batches (see group_commit.h). Each request
// carries a promise; the client holds the matching future and is woken when
// the committer resolves it:
//
//   * Insert / Delete  -> resolves with the epoch that made the op visible.
//   * Knn / RangeList  -> resolves with the result points.
//   * RangeCount       -> resolves with the count.
//
// A mutex + condition-variable deque is deliberate: producers enqueue one
// small struct per op while the consumer amortises the lock over an entire
// drained group, so the queue is never the bottleneck — the indexes are.

#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <utility>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"
#include "psi/telemetry/telemetry.h"

namespace psi::service {

enum class RequestKind : std::uint8_t {
  kInsert,
  kDelete,
  kKnn,
  kRangeCount,
  kRangeList,
  kBall,  // radius query: points within Euclidean distance `radius` of pt
};

inline const char* kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kInsert: return "insert";
    case RequestKind::kDelete: return "delete";
    case RequestKind::kKnn: return "knn";
    case RequestKind::kRangeCount: return "range_count";
    case RequestKind::kRangeList: return "range_list";
    case RequestKind::kBall: return "ball";
  }
  return "?";
}

// One result type for every request kind keeps the promise machinery
// monomorphic; unused fields stay empty.
template <typename Coord, int D>
struct Result {
  std::uint64_t epoch = 0;             // epoch that answered / committed
  std::size_t count = 0;               // range_count
  std::vector<Point<Coord, D>> points; // knn / range_list
};

template <typename Coord, int D>
struct Request {
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using result_t = Result<Coord, D>;

  RequestKind kind = RequestKind::kInsert;
  point_t pt{};        // insert / delete / knn centre / ball centre
  box_t box{};         // range_count / range_list
  std::size_t k = 0;   // knn
  double radius = 0;   // ball
  // Enqueue timestamp (telemetry): stamped by the queue, consumed by the
  // committer to record end-to-end queued-op latency. 0 = never queued.
  std::uint64_t enqueue_ns = 0;
  std::promise<result_t> promise;

  static Request insert(point_t p) {
    Request r;
    r.kind = RequestKind::kInsert;
    r.pt = p;
    return r;
  }
  static Request remove(point_t p) {
    Request r;
    r.kind = RequestKind::kDelete;
    r.pt = p;
    return r;
  }
  static Request knn(point_t q, std::size_t k) {
    Request r;
    r.kind = RequestKind::kKnn;
    r.pt = q;
    r.k = k;
    return r;
  }
  static Request range_count(box_t b) {
    Request r;
    r.kind = RequestKind::kRangeCount;
    r.box = b;
    return r;
  }
  static Request range_list(box_t b) {
    Request r;
    r.kind = RequestKind::kRangeList;
    r.box = b;
    return r;
  }
  // Ball (radius) query: resolves with the matching points and their count.
  static Request ball(point_t q, double radius) {
    Request r;
    r.kind = RequestKind::kBall;
    r.pt = q;
    r.radius = radius;
    return r;
  }
};

template <typename Coord, int D>
class RequestQueue {
 public:
  using request_t = Request<Coord, D>;
  using result_t = Result<Coord, D>;

  // Producer side. Returns the future paired with the request's promise.
  std::future<result_t> push(request_t req) {
    std::future<result_t> fut = req.promise.get_future();
    if constexpr (telemetry::kEnabled) req.enqueue_ns = telemetry::now_ns();
    {
      std::lock_guard<std::mutex> g(mu_);
      q_.push_back(std::move(req));
    }
    cv_.notify_one();
    return fut;
  }

  // Bulk producer path: one lock acquisition for a whole client batch.
  std::vector<std::future<result_t>> push_bulk(std::vector<request_t> reqs) {
    std::vector<std::future<result_t>> futs;
    futs.reserve(reqs.size());
    for (auto& r : reqs) futs.push_back(r.promise.get_future());
    if constexpr (telemetry::kEnabled) {
      // One clock read for the whole batch: the batch is one enqueue event.
      const std::uint64_t now = telemetry::now_ns();
      for (auto& r : reqs) r.enqueue_ns = now;
    }
    {
      std::lock_guard<std::mutex> g(mu_);
      for (auto& r : reqs) q_.push_back(std::move(r));
    }
    cv_.notify_one();
    return futs;
  }

  // Consumer side: move up to `max_batch` requests out in FIFO order
  // (0 = no limit). Never blocks.
  std::vector<request_t> drain(std::size_t max_batch = 0) {
    std::lock_guard<std::mutex> g(mu_);
    return drain_locked(max_batch);
  }

  // Consumer side: block until a request arrives or the queue is closed,
  // then drain. Returns an empty vector only once closed and empty.
  std::vector<request_t> wait_drain(std::size_t max_batch = 0) {
    std::unique_lock<std::mutex> g(mu_);
    cv_.wait(g, [&] { return !q_.empty() || closed_; });
    return drain_locked(max_batch);
  }

  // Block until a request is available, the queue is closed, or `timeout`
  // elapses; true iff the queue is non-empty. Lets the background committer
  // sleep without holding any lock that drain/commit needs (service.h).
  bool wait_nonempty(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> g(mu_);
    cv_.wait_for(g, timeout, [&] { return !q_.empty() || closed_; });
    return !q_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return q_.size();
  }

  bool empty() const { return size() == 0; }

  // Wake the consumer for shutdown; subsequent pushes are still accepted
  // (flush drains them), but wait_drain no longer blocks.
  void close() {
    {
      std::lock_guard<std::mutex> g(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> g(mu_);
    return closed_;
  }

  // Undo close(): a restarted consumer blocks in wait_* again instead of
  // spinning on the closed flag.
  void reopen() {
    std::lock_guard<std::mutex> g(mu_);
    closed_ = false;
  }

 private:
  std::vector<request_t> drain_locked(std::size_t max_batch) {
    const std::size_t n =
        max_batch == 0 ? q_.size() : std::min(max_batch, q_.size());
    std::vector<request_t> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    return out;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<request_t> q_;
  bool closed_ = false;
};

}  // namespace psi::service
