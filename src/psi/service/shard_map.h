// PSI-Lib service layer: SFC-range shard partitioner.
//
// A ShardMap carves the 64-bit space-filling-curve code space into K
// contiguous, disjoint ranges ("shards"). Every point routes to exactly one
// shard through its SFC code, so batch updates partition cleanly, duplicates
// of a point always land in the same shard (multiset delete semantics stay
// exact), and neighbouring points tend to share a shard (curve locality).
//
// Shard boundaries are *dynamic*, bp-forest style: the service splits a
// shard whose population outgrows its target at the median code of its
// contents, and merges adjacent underfull shards — the seat split/merge of
// bp-forest's binary-counter management, applied to curve ranges instead of
// DPU seats. The map itself is an immutable value inside a published view
// (see epoch.h); the writer mutates a private copy and republishes.
//
// Box routing: for a *monotone* codec (Morton: the code is a sum of
// per-dimension monotone spreads) every point inside an axis-aligned box has
// a code within [encode(box.lo), encode(box.hi)], so a box query visits only
// the contiguous run of shards overlapping that interval. Hilbert codes are
// not monotone, so under a Hilbert-routed map a box query conservatively
// visits all shards — each shard still prunes in O(1) through its root
// bounding box, so the broadcast costs K pointer chases, not K scans.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"
#include "psi/sfc/codec.h"

namespace psi::service {

// Trait: does code order bound box contents by corner codes?
template <typename Codec>
struct is_monotone_codec : std::false_type {};
template <typename Coord, int D>
struct is_monotone_codec<sfc::MortonCodec<Coord, D>> : std::true_type {};

template <typename Coord, int D, typename Codec = sfc::MortonCodec<Coord, D>>
class ShardMap {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using codec_t = Codec;

  static constexpr bool kMonotone = is_monotone_codec<Codec>::value;

  // K shards of equal code-space width (the population may still be skewed;
  // split/merge adapts the boundaries to the data as it arrives).
  static ShardMap uniform(std::size_t k) {
    assert(k >= 1);
    ShardMap m;
    m.upper_.resize(k);
    const std::uint64_t kMaxCode = ~std::uint64_t{0};
    for (std::size_t i = 0; i + 1 < k; ++i) {
      // Evenly spaced upper bounds; the last shard always covers the rest.
      m.upper_[i] =
          static_cast<std::uint64_t>((static_cast<unsigned __int128>(kMaxCode) *
                                      (i + 1)) /
                                     k);
    }
    m.upper_[k - 1] = kMaxCode;
    return m;
  }

  // Equal-population partition: boundaries at the code quantiles of a
  // sorted code sample. This is how bulk load picks its initial map —
  // uniform() would put an entire real-world dataset in shard 0, because
  // in-range coordinates only populate the bottom slice of the 64-bit code
  // space. Duplicate quantiles collapse, so the result may have fewer than
  // `k` shards (degenerate, heavily duplicated data).
  static ShardMap from_sorted_codes(const std::vector<std::uint64_t>& codes,
                                    std::size_t k) {
    assert(std::is_sorted(codes.begin(), codes.end()));
    if (codes.empty() || k <= 1) return uniform(k);
    ShardMap m;
    const std::size_t n = codes.size();
    for (std::size_t i = 1; i < k; ++i) {
      const std::uint64_t b = codes[i * n / k];
      // Boundaries are inclusive upper bounds and must strictly increase.
      if ((m.upper_.empty() && b > 0) ||
          (!m.upper_.empty() && b > m.upper_.back() + 1)) {
        m.upper_.push_back(b - 1);
      }
    }
    m.upper_.push_back(~std::uint64_t{0});
    return m;
  }

  std::size_t num_shards() const { return upper_.size(); }

  // Shard covering `code`: the first shard whose inclusive upper bound is
  // >= code.
  std::size_t shard_of_code(std::uint64_t code) const {
    const auto it = std::lower_bound(upper_.begin(), upper_.end(), code);
    return it == upper_.end() ? upper_.size() - 1
                              : static_cast<std::size_t>(it - upper_.begin());
  }

  std::size_t shard_of(const point_t& p) const {
    return shard_of_code(Codec::encode(p));
  }

  // Inclusive shard-index range a box query must visit. Corner coordinates
  // are clamped into the codec domain [0, 2^bits) first: stored points are
  // in-domain, so clamping keeps the interval conservative, whereas raw
  // encoding of an out-of-domain corner (negative, or beyond the curve
  // precision) would wrap under the codec's masking and skip shards that
  // do hold matches.
  std::pair<std::size_t, std::size_t> shard_range_for_box(
      const box_t& query) const {
    if constexpr (kMonotone) {
      point_t lo = query.lo, hi = query.hi;
      constexpr int bits = sfc::bits_per_dim<D>();
      constexpr std::uint64_t dom_max =
          bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
      for (int d = 0; d < D; ++d) {
        lo[d] = clamp_coord(lo[d], dom_max);
        hi[d] = clamp_coord(hi[d], dom_max);
      }
      return {shard_of_code(Codec::encode(lo)),
              shard_of_code(Codec::encode(hi))};
    } else {
      (void)query;
      return {0, upper_.size() - 1};
    }
  }

  // Split shard `i` so that codes <= `mid_code` stay in shard i and larger
  // codes move to a new shard i+1. No-op if the cut does not separate the
  // range.
  bool split(std::size_t i, std::uint64_t mid_code) {
    assert(i < upper_.size());
    const std::uint64_t lo = lower_bound_of(i);
    if (mid_code < lo || mid_code >= upper_[i]) return false;
    upper_.insert(upper_.begin() + static_cast<std::ptrdiff_t>(i), mid_code);
    return true;
  }

  // Merge shard i with shard i+1 (the merged shard keeps index i).
  bool merge(std::size_t i) {
    if (upper_.size() <= 1 || i + 1 >= upper_.size()) return false;
    upper_.erase(upper_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }

  // Inclusive lower bound of shard i's code range.
  std::uint64_t lower_bound_of(std::size_t i) const {
    return i == 0 ? 0 : upper_[i - 1] + 1;
  }
  // Inclusive upper bound of shard i's code range.
  std::uint64_t upper_bound_of(std::size_t i) const { return upper_[i]; }

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.upper_ == b.upper_;
  }

 private:
  static Coord clamp_coord(Coord c, std::uint64_t dom_max) {
    if (c < Coord{0}) return Coord{0};
    if (static_cast<std::uint64_t>(c) > dom_max) {
      return static_cast<Coord>(dom_max);
    }
    return c;
  }

  // upper_[i] = inclusive upper code bound of shard i; strictly increasing,
  // upper_.back() == 2^64-1 so every code routes somewhere.
  std::vector<std::uint64_t> upper_;
};

}  // namespace psi::service
