// PSI-Lib service layer: SFC-range shard partitioner.
//
// A ShardMap carves the 64-bit space-filling-curve code space into K
// contiguous, disjoint ranges ("shards"). Every point routes to exactly one
// shard through its SFC code, so batch updates partition cleanly, duplicates
// of a point always land in the same shard (multiset delete semantics stay
// exact), and neighbouring points tend to share a shard (curve locality).
//
// Shard boundaries are *dynamic*, bp-forest style: the service splits a
// shard whose population outgrows its target at the median code of its
// contents, and merges adjacent underfull shards — the seat split/merge of
// bp-forest's binary-counter management, applied to curve ranges instead of
// DPU seats. The map itself is an immutable value inside a published view
// (see epoch.h); the writer mutates a private copy and republishes.
//
// Box routing: for a *monotone* codec (Morton: the code is a sum of
// per-dimension monotone spreads) every point inside an axis-aligned box has
// a code within [encode(box.lo), encode(box.hi)], so a box query visits only
// the contiguous run of shards overlapping that interval. Hilbert codes are
// not monotone, so under a Hilbert-routed map a box query conservatively
// visits all shards — each shard still prunes in O(1) through its root
// bounding box, so the broadcast costs K pointer chases, not K scans.

#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/sort.h"
#include "psi/sfc/codec.h"

namespace psi::service {

// Identity of a node hosting shards. Node 0 is the conventional "local"
// node of a single-process service; the net layer (src/psi/net/) assigns
// real ids. Lives here — not in net/ — because shard *location* is a
// service-layer concept: the directory below places every shard on a node
// whether or not a transport is attached.
using NodeId = std::uint32_t;

// Trait: does code order bound box contents by corner codes?
template <typename Codec>
struct is_monotone_codec : std::false_type {};
template <typename Coord, int D>
struct is_monotone_codec<sfc::MortonCodec<Coord, D>> : std::true_type {};

template <typename Coord, int D, typename Codec = sfc::MortonCodec<Coord, D>>
class ShardMap {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using codec_t = Codec;

  static constexpr bool kMonotone = is_monotone_codec<Codec>::value;

  // K shards of equal code-space width (the population may still be skewed;
  // split/merge adapts the boundaries to the data as it arrives).
  static ShardMap uniform(std::size_t k) {
    assert(k >= 1);
    ShardMap m;
    m.upper_.resize(k);
    const std::uint64_t kMaxCode = ~std::uint64_t{0};
    for (std::size_t i = 0; i + 1 < k; ++i) {
      // Evenly spaced upper bounds; the last shard always covers the rest.
      m.upper_[i] =
          static_cast<std::uint64_t>((static_cast<unsigned __int128>(kMaxCode) *
                                      (i + 1)) /
                                     k);
    }
    m.upper_[k - 1] = kMaxCode;
    return m;
  }

  // Equal-population partition: boundaries at the code quantiles of a
  // sorted code sample. This is how bulk load picks its initial map —
  // uniform() would put an entire real-world dataset in shard 0, because
  // in-range coordinates only populate the bottom slice of the 64-bit code
  // space. Duplicate quantiles collapse, so the result may have fewer than
  // `k` shards (degenerate, heavily duplicated data).
  static ShardMap from_sorted_codes(const std::vector<std::uint64_t>& codes,
                                    std::size_t k) {
    assert(std::is_sorted(codes.begin(), codes.end()));
    if (codes.empty() || k <= 1) return uniform(k);
    ShardMap m;
    const std::size_t n = codes.size();
    for (std::size_t i = 1; i < k; ++i) {
      const std::uint64_t b = codes[i * n / k];
      // Boundaries are inclusive upper bounds and must strictly increase.
      if ((m.upper_.empty() && b > 0) ||
          (!m.upper_.empty() && b > m.upper_.back() + 1)) {
        m.upper_.push_back(b - 1);
      }
    }
    m.upper_.push_back(~std::uint64_t{0});
    return m;
  }

  // Rebuild a map from previously published inclusive upper bounds
  // (checkpoint topology restore). The caller validates shape — strictly
  // increasing, last == 2^64-1 — before trusting recovered bytes.
  static ShardMap from_bounds(std::vector<std::uint64_t> upper) {
    assert(!upper.empty() && upper.back() == ~std::uint64_t{0});
    assert(std::is_sorted(upper.begin(), upper.end()));
    ShardMap m;
    m.upper_ = std::move(upper);
    return m;
  }

  std::size_t num_shards() const { return upper_.size(); }

  // Shard covering `code`: the first shard whose inclusive upper bound is
  // >= code.
  std::size_t shard_of_code(std::uint64_t code) const {
    const auto it = std::lower_bound(upper_.begin(), upper_.end(), code);
    return it == upper_.end() ? upper_.size() - 1
                              : static_cast<std::size_t>(it - upper_.begin());
  }

  std::size_t shard_of(const point_t& p) const {
    return shard_of_code(Codec::encode(p));
  }

  // Inclusive shard-index range a box query must visit. Corner coordinates
  // are clamped into the codec domain [0, 2^bits) first: stored points are
  // in-domain, so clamping keeps the interval conservative, whereas raw
  // encoding of an out-of-domain corner (negative, or beyond the curve
  // precision) would wrap under the codec's masking and skip shards that
  // do hold matches.
  std::pair<std::size_t, std::size_t> shard_range_for_box(
      const box_t& query) const {
    if constexpr (kMonotone) {
      point_t lo = query.lo, hi = query.hi;
      constexpr int bits = sfc::bits_per_dim<D>();
      constexpr std::uint64_t dom_max =
          bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
      for (int d = 0; d < D; ++d) {
        lo[d] = clamp_coord(lo[d], dom_max);
        hi[d] = clamp_coord(hi[d], dom_max);
      }
      return {shard_of_code(Codec::encode(lo)),
              shard_of_code(Codec::encode(hi))};
    } else {
      (void)query;
      return {0, upper_.size() - 1};
    }
  }

  // Split shard `i` so that codes <= `mid_code` stay in shard i and larger
  // codes move to a new shard i+1. No-op if the cut does not separate the
  // range.
  bool split(std::size_t i, std::uint64_t mid_code) {
    assert(i < upper_.size());
    const std::uint64_t lo = lower_bound_of(i);
    if (mid_code < lo || mid_code >= upper_[i]) return false;
    upper_.insert(upper_.begin() + static_cast<std::ptrdiff_t>(i), mid_code);
    return true;
  }

  // Merge shard i with shard i+1 (the merged shard keeps index i).
  bool merge(std::size_t i) {
    if (upper_.size() <= 1 || i + 1 >= upper_.size()) return false;
    upper_.erase(upper_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }

  // Inclusive lower bound of shard i's code range.
  std::uint64_t lower_bound_of(std::size_t i) const {
    return i == 0 ? 0 : upper_[i - 1] + 1;
  }
  // Inclusive upper bound of shard i's code range.
  std::uint64_t upper_bound_of(std::size_t i) const { return upper_[i]; }

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.upper_ == b.upper_;
  }

 private:
  static Coord clamp_coord(Coord c, std::uint64_t dom_max) {
    if (c < Coord{0}) return Coord{0};
    if (static_cast<std::uint64_t>(c) > dom_max) {
      return static_cast<Coord>(dom_max);
    }
    return c;
  }

  // upper_[i] = inclusive upper code bound of shard i; strictly increasing,
  // upper_.back() == 2^64-1 so every code routes somewhere.
  std::vector<std::uint64_t> upper_;
};

// ---------------------------------------------------------------------------
// Shared routing-code helpers (bulk load, shard split — in-process and
// distributed writers alike).
// ---------------------------------------------------------------------------

// A point with its routing code: the unit of every code-ordered sort.
template <typename PointT>
struct CodedPoint {
  std::uint64_t code;
  PointT pt;
};

// Encode every point and sort by (code, point): one parallel encode pass +
// one parallel sample sort. The point tiebreak makes the order total, so
// equal-code duplicates partition deterministically.
template <typename Codec, typename PointT>
std::vector<CodedPoint<PointT>> code_and_sort(const std::vector<PointT>& pts) {
  std::vector<CodedPoint<PointT>> coded = tabulate<CodedPoint<PointT>>(
      pts.size(),
      [&](std::size_t i) { return CodedPoint<PointT>{Codec::encode(pts[i]), pts[i]}; });
  sample_sort(coded, [](const CodedPoint<PointT>& a, const CodedPoint<PointT>& b) {
    if (a.code != b.code) return a.code < b.code;
    return a.pt < b.pt;
  });
  return coded;
}

// The contiguous slice of a code-sorted dataset that shard `i` of `map`
// owns. `codes` must be the sorted code column of `coded` (precomputed
// once so the binary searches don't re-extract it per shard). Bulk load
// uses this per shard — in-process and distributed writers must partition
// identically or shard contents would disagree with the map's routing.
template <typename PointT, typename MapT>
std::vector<PointT> shard_slice(const std::vector<CodedPoint<PointT>>& coded,
                                const std::vector<std::uint64_t>& codes,
                                const MapT& map, std::size_t i) {
  const auto lo = std::lower_bound(codes.begin(), codes.end(),
                                   map.lower_bound_of(i)) -
                  codes.begin();
  const auto hi = std::upper_bound(codes.begin(), codes.end(),
                                   map.upper_bound_of(i)) -
                  codes.begin();
  std::vector<PointT> part;
  part.reserve(static_cast<std::size_t>(hi - lo));
  for (auto j = lo; j < hi; ++j) {
    part.push_back(coded[static_cast<std::size_t>(j)].pt);
  }
  return part;
}

// Where to cut a code-sorted shard in two. Starts at the median and pushes
// the cut right past an equal-code run so the boundary separates (all
// codes <= boundary go left). If the run reaches the end, cuts just before
// the run instead — a hot duplicated key keeps its own shard and the rest
// splits off. Returns nullopt only when the whole shard is one equal-code
// run (unsplittable). `.first` = index of the first right-half element,
// `.second` = inclusive upper code bound of the left half.
template <typename PointT>
std::optional<std::pair<std::size_t, std::uint64_t>> split_position(
    const std::vector<CodedPoint<PointT>>& coded) {
  const std::size_t n = coded.size();
  if (n < 2) return std::nullopt;
  std::size_t mid = n / 2;
  std::uint64_t boundary = coded[mid - 1].code;
  while (mid < n && coded[mid].code == boundary) ++mid;
  if (mid == n) {
    std::size_t run_start = n / 2;
    while (run_start > 0 && coded[run_start - 1].code == boundary) {
      --run_start;
    }
    if (run_start == 0) return std::nullopt;  // whole shard is one code
    mid = run_start;
    boundary = coded[mid - 1].code;
  }
  return std::make_pair(mid, boundary);
}

// ---------------------------------------------------------------------------
// ShardDirectory: the authoritative "where and which version" record.
// ---------------------------------------------------------------------------
//
// Couples a ShardMap with the per-shard metadata every writer must keep
// aligned with it through splits, merges, and wholesale reloads:
//
//   * key     — a stable 64-bit identity that survives positional shifts.
//     Positional indices renumber on every split/merge; across a transport
//     a stale position would silently address the wrong shard, so remote
//     protocols (net/) speak keys. Fresh on every topology event.
//   * owner   — the NodeId hosting the shard's replicas (always 0 for the
//     in-process service).
//   * version — the content version the query cache keys on (query_cache.h):
//     bumped via touch() for exactly the shards a commit applied to.
//   * stamp   — the topology generation: bumped on split/merge/reset/move,
//     i.e. whenever positional coverage stops being comparable.
//
// The writer owns the directory and mutates it under its commit lock;
// published views copy the plain vectors out (the directory itself holds
// atomics for id allocation and is not copyable).
template <typename Coord, int D, typename Codec = sfc::MortonCodec<Coord, D>>
class ShardDirectory {
 public:
  using map_t = ShardMap<Coord, D, Codec>;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit ShardDirectory(std::size_t k = 1) {
    reset(map_t::uniform(std::max<std::size_t>(1, k)));
  }

  ShardDirectory(const ShardDirectory&) = delete;
  ShardDirectory& operator=(const ShardDirectory&) = delete;

  // Wholesale replacement (construction, bulk load): every shard gets a
  // fresh key and version, ownership defaults to node 0, and the topology
  // generation advances — all cached coverage is invalidated.
  void reset(map_t map) {
    map_ = std::move(map);
    const std::size_t k = map_.num_shards();
    keys_.resize(k);
    versions_.resize(k);
    owners_.assign(k, NodeId{0});
    for (std::size_t i = 0; i < k; ++i) {
      keys_[i] = fresh_key();
      versions_[i] = fresh_version();
    }
    ++stamp_;
  }

  // Verbatim reinstatement of a previously published directory (topology
  // restore after a clean restart): keys, versions, and owners survive
  // exactly as checkpointed, so handed-back shards keep the identities
  // remote protocols and caches already speak. The id allocators jump past
  // every restored value — a later split/touch must never re-issue a key
  // or version the old incarnation already spent. Topology generation
  // advances as usual: pre-restart coverage is not comparable.
  void restore(map_t map, std::vector<std::uint64_t> keys,
               std::vector<std::uint64_t> versions,
               std::vector<NodeId> owners) {
    const std::size_t k = map.num_shards();
    assert(keys.size() == k && versions.size() == k && owners.size() == k);
    map_ = std::move(map);
    keys_ = std::move(keys);
    versions_ = std::move(versions);
    owners_ = std::move(owners);
    std::uint64_t max_key = next_key_.load(std::memory_order_relaxed);
    std::uint64_t max_version = next_version_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < k; ++i) {
      max_key = std::max(max_key, keys_[i]);
      max_version = std::max(max_version, versions_[i]);
    }
    next_key_.store(max_key, std::memory_order_relaxed);
    next_version_.store(max_version, std::memory_order_relaxed);
    ++stamp_;
  }

  std::size_t num_shards() const { return map_.num_shards(); }
  const map_t& map() const { return map_; }
  std::uint64_t stamp() const { return stamp_; }

  std::uint64_t key_of(std::size_t i) const { return keys_[i]; }
  std::uint64_t version_of(std::size_t i) const { return versions_[i]; }
  NodeId owner_of(std::size_t i) const { return owners_[i]; }
  const std::vector<std::uint64_t>& keys() const { return keys_; }
  const std::vector<std::uint64_t>& versions() const { return versions_; }
  const std::vector<NodeId>& owners() const { return owners_; }

  // Position of the shard with stable identity `key`, or npos. Linear:
  // shard counts are at most cfg.max_shards (~1024) and lookups are
  // per-topology-event, not per-query.
  std::size_t index_of_key(std::uint64_t key) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return i;
    }
    return npos;
  }

  // Record that a commit changed shard i's contents. Safe concurrently on
  // *distinct* shards (the parallel per-shard apply): the allocator is
  // atomic and each task writes its own element.
  void touch(std::size_t i) { versions_[i] = fresh_version(); }

  // Split shard i at `boundary` (codes <= boundary stay left). Both halves
  // get fresh keys and versions; the owner is inherited — a split never
  // moves data between nodes on its own.
  bool split(std::size_t i, std::uint64_t boundary) {
    if (!map_.split(i, boundary)) return false;
    const NodeId owner = owners_[i];
    keys_[i] = fresh_key();
    versions_[i] = fresh_version();
    const auto at = static_cast<std::ptrdiff_t>(i) + 1;
    keys_.insert(keys_.begin() + at, fresh_key());
    versions_.insert(versions_.begin() + at, fresh_version());
    owners_.insert(owners_.begin() + at, owner);
    ++stamp_;
    return true;
  }

  // Merge shard i with shard i+1; the merged shard keeps position i and
  // `owner` (merges may pull the right half across nodes — the caller
  // ships the data, the directory records the outcome).
  bool merge(std::size_t i, NodeId owner) {
    if (!map_.merge(i)) return false;
    keys_[i] = fresh_key();
    versions_[i] = fresh_version();
    owners_[i] = owner;
    const auto at = static_cast<std::ptrdiff_t>(i) + 1;
    keys_.erase(keys_.begin() + at);
    versions_.erase(versions_.begin() + at);
    owners_.erase(owners_.begin() + at);
    ++stamp_;
    return true;
  }

  // Record a shard handoff: same contents, new host. The key and version
  // survive (contents did not change) but the stamp flips — coverage that
  // routed to the old owner is no longer comparable, and remote caches
  // must revalidate.
  void move_owner(std::size_t i, NodeId node) {
    owners_[i] = node;
    ++stamp_;
  }

  // A fresh, never-reused shard version / key. Atomic because the parallel
  // per-shard apply may call touch() concurrently.
  std::uint64_t fresh_version() {
    return next_version_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  std::uint64_t fresh_key() {
    return next_key_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  map_t map_;
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> versions_;
  std::vector<NodeId> owners_;
  std::uint64_t stamp_ = 0;
  std::atomic<std::uint64_t> next_version_{0};
  std::atomic<std::uint64_t> next_key_{0};
};

}  // namespace psi::service
