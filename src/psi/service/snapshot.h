// PSI-Lib service layer: published views and lock-free reads.
//
// A View is the immutable unit of publication: one shard map plus one
// read-only index handle per shard, stamped with the epoch that produced
// it. Readers acquire the current View with a single atomic load (see
// epoch.h) and run whole queries against it — a reader observes either all
// of a commit group or none of it, never a torn mix.
//
// Snapshot is the reader-facing wrapper: it pins a View alive and exposes
// the psi::api query surface by fanning out over the View's shards. The
// primary read path is *streaming* (range_visit / ball_visit / knn_visit,
// see src/psi/api/query.h): matches flow straight from each shard's native
// traversal into the caller's sink, shard by shard, with no intermediate
// per-shard vector — a sink returning false stops mid-shard and skips the
// remaining shards. Fan-out uses the shard map's box routing where the
// codec allows it; every shard also prunes through its own root bounding
// box, so over-broad routing costs O(1) per extra shard.
//
// Handing range_visit/ball_visit an api::ConcurrentSink selects the
// *parallel* read path instead: shards run concurrently (a TaskGroup, so
// the fan-out is real even from non-pool reader threads) and each shard
// uses its native parallel subtree traversal when it has one
// (api::range_visit_par shim). Delivery order is unspecified; early
// termination degrades from exact-prefix to "stop flag at node
// granularity", which ConcurrentSink's limit machinery turns back into an
// exact result count. The materialising forms (range_list / ball_list /
// knn) are thin adapters over the visits; range_list/ball_list/range_count/
// ball_count take the parallel path automatically when the scheduler has
// more than one worker and the routed shard run is big enough to pay for
// the fan-out (parallel_worth_it).
//
// kNN parallelises differently: there is no per-match sink fan-out but a
// shared api::ConcurrentKnnBuffer — shards run concurrently, all seeded by
// one global radius bound that tightens as any of them fills its heap, and
// the exact top-k merge happens at the join (knn_visit_par; knn_visit
// routes there automatically at >1 workers, knn_visit_seq keeps the
// nearest-shard-first sequential walk).
//
// The Index parameter is anything satisfying api::BatchDynamicIndex —
// including api::AnyIndex, in which case the View's shards may be
// *different backend types* at runtime (see group_commit.h).

#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "psi/api/query.h"
#include "psi/api/read_options.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/parallel/task_group.h"
#include "psi/service/shard_map.h"
#include "psi/telemetry/metrics.h"

namespace psi::service {

// Axis-aligned bounding box of a ball, for shard routing. Corners may
// leave the codec domain; shard_range_for_box clamps them conservatively.
// Shared by Snapshot and the distributed query client
// (net/distributed_service.h), which must route balls identically.
template <typename Coord, int D>
Box<Coord, D> ball_bounding_box(const Point<Coord, D>& q, double radius) {
  const double r = std::ceil(std::max(0.0, radius));
  Box<Coord, D> b;
  for (int d = 0; d < D; ++d) {
    b.lo[d] = static_cast<Coord>(static_cast<double>(q[d]) - r);
    b.hi[d] = static_cast<Coord>(static_cast<double>(q[d]) + r);
  }
  return b;
}

template <typename Index, typename Codec>
struct View {
  using index_t = Index;
  using point_t = typename Index::point_t;
  using box_t = typename Index::box_t;
  using coord_t = typename point_t::coord_t;
  static constexpr int kDim = point_t::kDim;
  using map_t = ShardMap<coord_t, kDim, Codec>;

  std::uint64_t epoch = 0;
  map_t map;
  std::vector<std::shared_ptr<const Index>> shards;
  // Per-shard content versions and the shard-map generation that produced
  // them (maintained by the group committer): the query cache's
  // cross-epoch validity key — a commit only changes the versions of the
  // shards it touched, so results covering other shards stay reusable.
  std::vector<std::uint64_t> shard_versions;
  std::uint64_t map_stamp = 0;
  // Shard *location* metadata, published from the writer's ShardDirectory:
  // a stable per-shard key (survives positional shifts; what the wire
  // protocol addresses shards by) and the owning node (always 0 for the
  // in-process service — `shards[i]` is then the local replica handle; a
  // distributed deployment routes non-local shards through the transport
  // instead of holding a pointer).
  std::vector<std::uint64_t> shard_keys;
  std::vector<NodeId> shard_owners;
  // Telemetry (both null when telemetry is disabled or the view was built
  // outside a service): the read-path histograms readers record into, and
  // the per-shard heat cells — positionally aligned with `shards` — whose
  // read counters every routed query bumps. Shared so readers of a
  // superseded view stay safe; see telemetry/metrics.h.
  std::shared_ptr<telemetry::ServiceMetrics> metrics;
  std::shared_ptr<telemetry::ShardHeat::cells_t> heat_cells;

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards) n += s->size();
    return n;
  }
};

template <typename Index, typename Codec>
class Snapshot {
 public:
  using view_t = View<Index, Codec>;
  using point_t = typename view_t::point_t;
  using box_t = typename view_t::box_t;
  using coord_t = typename view_t::coord_t;
  static constexpr int kDim = view_t::kDim;

  explicit Snapshot(std::shared_ptr<const view_t> view)
      : view_(std::move(view)) {}

  std::uint64_t epoch() const { return view_->epoch; }
  std::size_t num_shards() const { return view_->shards.size(); }
  std::size_t size() const { return view_->size(); }

  // Version observability (query_cache.h keys entries on these).
  std::uint64_t map_stamp() const { return view_->map_stamp; }
  const std::vector<std::uint64_t>& shard_versions() const {
    return view_->shard_versions;
  }
  // Location observability: stable shard identities and owning nodes
  // (single-process views own every shard on node 0).
  const std::vector<std::uint64_t>& shard_keys() const {
    return view_->shard_keys;
  }
  const std::vector<NodeId>& shard_owners() const {
    return view_->shard_owners;
  }

  // Inclusive shard run a box / ball query is routed to under this view's
  // map — the shards whose versions a cached result depends on.
  std::pair<std::size_t, std::size_t> shard_run_for_box(
      const box_t& query) const {
    return view_->map.shard_range_for_box(query);
  }
  std::pair<std::size_t, std::size_t> shard_run_for_ball(
      const point_t& q, double radius) const {
    return view_->map.shard_range_for_box(ball_box(q, radius));
  }

  // -------------------------------------------------------------------
  // Streaming read path (primary)
  // -------------------------------------------------------------------

  // Stream every point inside `query` to the sink, shard by shard. No
  // intermediate vectors; a sink returning false stops the whole fan-out.
  // With an api::ConcurrentSink, shards are traversed concurrently (see
  // the header comment).
  template <typename Sink>
  void range_visit(const box_t& query, Sink&& sink) const {
    telemetry::ScopedTimer t(read_hist(telemetry::ReadOp::kRangeList));
    const auto [lo, hi] = view_->map.shard_range_for_box(query);
    telemetry::record_reads(view_->heat_cells, lo, hi);
    if constexpr (api::is_concurrent_sink_v<std::remove_cvref_t<Sink>>) {
      visit_shards_par(lo, hi, sink, [&](const Index& shard) {
        api::range_visit_par(shard, query, sink);
      });
    } else {
      api::StopGuard<Sink> guard{sink};
      for (std::size_t i = lo; i <= hi && guard.alive; ++i) {
        view_->shards[i]->range_visit(query, guard);
      }
    }
  }

  // Stream every point within Euclidean distance `radius` of q. Routed
  // through the ball's bounding box; each shard prunes from its own root.
  template <typename Sink>
  void ball_visit(const point_t& q, double radius, Sink&& sink) const {
    telemetry::ScopedTimer t(read_hist(telemetry::ReadOp::kBallList));
    const auto [lo, hi] = view_->map.shard_range_for_box(ball_box(q, radius));
    telemetry::record_reads(view_->heat_cells, lo, hi);
    if constexpr (api::is_concurrent_sink_v<std::remove_cvref_t<Sink>>) {
      visit_shards_par(lo, hi, sink, [&](const Index& shard) {
        api::ball_visit_par(shard, q, radius, sink);
      });
    } else {
      api::StopGuard<Sink> guard{sink};
      for (std::size_t i = lo; i <= hi && guard.alive; ++i) {
        view_->shards[i]->ball_visit(q, radius, guard);
      }
    }
  }

  // k nearest neighbours across all shards, streamed in increasing
  // distance order. Routes to the parallel fan-out when the scheduler has
  // more than one worker and the view holds at least a grain's worth of
  // points (knn_visit_par below), and to the sequential nearest-shard-first
  // walk otherwise. Tie membership at the k-th distance may differ between
  // the two paths; distances are exact on both.
  template <typename Sink>
  void knn_visit(const point_t& q, std::size_t k, Sink&& sink) const {
    telemetry::ScopedTimer t(read_hist(telemetry::ReadOp::kKnn));
    if (knn_parallel_worth_it(k)) {
      knn_visit_par(q, k, sink);
    } else {
      knn_visit_seq(q, k, sink);
    }
  }

  // Sequential kNN: shards are visited in order of root-box distance and a
  // shard is skipped once the buffer is full and the shard's box cannot
  // beat the current k-th distance — with balanced shards a query
  // typically touches one or two of them, so the fan-out cost stays near
  // K=1. The bounded buffer is the algorithm's working state; only the
  // final ranked stream reaches the sink.
  template <typename Sink>
  void knn_visit_seq(const point_t& q, std::size_t k, Sink&& sink) const {
    std::vector<KnnCand> order = knn_shard_order(q);
    KnnBuffer<point_t> buf(k);
    for (const KnnCand& c : order) {
      if (buf.full() && c.dist2 >= buf.worst()) break;  // sorted: all done
      // Heat counts shards actually searched, not every candidate.
      telemetry::record_read(view_->heat_cells, c.index);
      c.shard->knn_visit(q, k, [&](const point_t& p) {
        buf.offer(squared_distance(p, q), p);
      });
    }
    for (const auto& e : buf.sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  // Parallel kNN: shards run concurrently (TaskGroup, so the fan-out is
  // real from non-pool reader threads) and all feed one shared
  // api::ConcurrentKnnBuffer — every shard's search is seeded with the
  // running global radius bound instead of starting from scratch, and each
  // spawned task re-checks its shard's root-box distance against the bound
  // at execution time, so far shards reached after near shards filled the
  // buffer are skipped in O(1). Inside a shard the backend's native kNN
  // subtree fan-out runs when it has one (api::knn_visit_par shim). The
  // exact merge happens at the join; the sink then receives the ranked
  // stream, same contract as the sequential path.
  template <typename Sink>
  void knn_visit_par(const point_t& q, std::size_t k, Sink&& sink) const {
    std::vector<KnnCand> order = knn_shard_order(q);
    api::ConcurrentKnnBuffer<coord_t, kDim> buf(k);
    TaskGroup tasks;
    for (const KnnCand& c : order) {
      tasks.spawn([c, q, k, &buf, cells = view_->heat_cells] {
        if (c.dist2 >= buf.bound()) return;
        telemetry::record_read(cells, c.index);
        api::knn_visit_par(*c.shard, q, k, buf);
      });
    }
    tasks.wait();
    for (const auto& e : buf.merged_sorted()) {
      if (!api::sink_accept(sink, e.point)) return;
    }
  }

  // -------------------------------------------------------------------
  // Unified read entry point (the redesigned api surface)
  // -------------------------------------------------------------------

  using desc_t = api::QueryDesc<coord_t, kDim>;

  // One entry point for every query shape: list kinds stream their matches
  // into `sink` (an api::ConcurrentSink selects the parallel fan-out as
  // usual) and return the number of points streamed; count kinds never
  // touch the sink and return the count. A snapshot *is* a consistency
  // point, so there is no ReadOptions at this level — the service facades
  // resolve consistency and cache policy, then land here.
  template <typename Sink>
  std::size_t query(const desc_t& q, Sink&& sink) const {
    using Kind = typename desc_t::Kind;
    switch (q.kind) {
      case Kind::kRangeCount:
        return range_count(q.box);
      case Kind::kBallCount:
        return ball_count(q.center, q.radius);
      case Kind::kRangeList:
        return deliver(sink, [&](auto& s) { range_visit(q.box, s); });
      case Kind::kBallList:
        return deliver(sink, [&](auto& s) { ball_visit(q.center, q.radius, s); });
      case Kind::kKnn:
        return deliver(sink, [&](auto& s) { knn_visit(q.center, q.k, s); });
    }
    return 0;
  }

  // -------------------------------------------------------------------
  // Materialising adapters
  // -------------------------------------------------------------------

  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    out.reserve(k);
    knn_visit(q, k, api::collect_into(out));
    return out;
  }

  // Count-only kNN (= min(k, population)): runs the bounded search without
  // materialising a point vector — for callers that only want |result|.
  std::size_t knn_count(const point_t& q, std::size_t k) const {
    std::size_t n = 0;
    knn_visit(q, k, [&](const point_t&) { ++n; });
    return n;
  }

  // Distance-only kNN: increasing squared distances, no point vector.
  // Tie-insensitive, so it is also the right shape for equivalence checks
  // between the sequential and parallel paths.
  std::vector<double> knn_dist2(const point_t& q, std::size_t k) const {
    std::vector<double> out;
    out.reserve(k);
    knn_visit(q, k, [&](const point_t& p) {
      out.push_back(squared_distance(p, q));
    });
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    telemetry::ScopedTimer t(read_hist(telemetry::ReadOp::kRangeCount));
    const auto run = view_->map.shard_range_for_box(query);
    telemetry::record_reads(view_->heat_cells, run.first, run.second);
    // Counts have no intra-shard parallelism, so a single-shard run gains
    // nothing from a task; multi-shard runs still go through the size gate.
    if (run.second > run.first && parallel_worth_it(run)) {
      return count_shards_par(run.first, run.second, [&](const Index& shard) {
        return shard.range_count(query);
      });
    }
    std::size_t total = 0;
    for (std::size_t i = run.first; i <= run.second; ++i) {
      total += view_->shards[i]->range_count(query);
    }
    return total;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    telemetry::ScopedTimer t(read_hist(telemetry::ReadOp::kRangeList));
    const auto run = view_->map.shard_range_for_box(query);
    telemetry::record_reads(view_->heat_cells, run.first, run.second);
    if (parallel_worth_it(run)) {
      api::ConcurrentSink<coord_t, kDim> sink;
      visit_shards_par(run.first, run.second, sink, [&](const Index& shard) {
        api::range_visit_par(shard, query, sink);
      });
      return sink.take();
    }
    std::vector<point_t> out;
    auto collect = api::collect_into(out);
    api::StopGuard<decltype(collect)> guard{collect};
    for (std::size_t i = run.first; i <= run.second; ++i) {
      view_->shards[i]->range_visit(query, guard);
    }
    return out;
  }

  std::size_t ball_count(const point_t& q, double radius) const {
    telemetry::ScopedTimer t(read_hist(telemetry::ReadOp::kBallCount));
    const auto run = view_->map.shard_range_for_box(ball_box(q, radius));
    telemetry::record_reads(view_->heat_cells, run.first, run.second);
    if (run.second > run.first && parallel_worth_it(run)) {
      return count_shards_par(run.first, run.second, [&](const Index& shard) {
        return shard.ball_count(q, radius);
      });
    }
    std::size_t total = 0;
    for (std::size_t i = run.first; i <= run.second; ++i) {
      total += view_->shards[i]->ball_count(q, radius);
    }
    return total;
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    telemetry::ScopedTimer t(read_hist(telemetry::ReadOp::kBallList));
    const auto run = view_->map.shard_range_for_box(ball_box(q, radius));
    telemetry::record_reads(view_->heat_cells, run.first, run.second);
    if (parallel_worth_it(run)) {
      api::ConcurrentSink<coord_t, kDim> sink;
      visit_shards_par(run.first, run.second, sink, [&](const Index& shard) {
        api::ball_visit_par(shard, q, radius, sink);
      });
      return sink.take();
    }
    std::vector<point_t> out;
    auto collect = api::collect_into(out);
    api::StopGuard<decltype(collect)> guard{collect};
    for (std::size_t i = run.first; i <= run.second; ++i) {
      view_->shards[i]->ball_visit(q, radius, guard);
    }
    return out;
  }

  // Multiset of all indexed points (test support; O(n)).
  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size());
    for (const auto& shard : view_->shards) {
      auto part = shard->flatten();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  const view_t& view() const { return *view_; }

 private:
  // Run `visit` into `sink`, returning the number of points streamed. An
  // api::ConcurrentSink must reach the visit *unwrapped* (the visits
  // dispatch on its concrete type to pick the parallel path), so its count
  // is the retained-buffer delta; any other sink gets a counting
  // pass-through that tallies invocations.
  template <typename Sink, typename Visit>
  std::size_t deliver(Sink& sink, Visit visit) const {
    if constexpr (api::is_concurrent_sink_v<std::remove_cvref_t<Sink>>) {
      const std::size_t before = sink.count();
      visit(sink);
      return sink.count() - before;
    } else {
      std::size_t n = 0;
      auto counting = [&](const point_t& p) {
        ++n;
        return api::sink_accept(sink, p);
      };
      visit(counting);
      return n;
    }
  }

  // A kNN shard candidate: the shard, its root-box distance to q, and its
  // position in the view (heat accounting).
  struct KnnCand {
    double dist2;
    const Index* shard;
    std::size_t index;
  };

  // Non-empty shards sorted by increasing root-box distance to q.
  std::vector<KnnCand> knn_shard_order(const point_t& q) const {
    std::vector<KnnCand> order;
    order.reserve(view_->shards.size());
    for (std::size_t i = 0; i < view_->shards.size(); ++i) {
      const auto& shard = view_->shards[i];
      if (shard->size() == 0) continue;
      order.push_back(
          KnnCand{min_squared_distance(shard->bounds(), q), shard.get(), i});
    }
    std::sort(
        order.begin(), order.end(),
        [](const KnnCand& a, const KnnCand& b) { return a.dist2 < b.dist2; });
    return order;
  }

  // Same gate as parallel_worth_it, for kNN: every shard is a candidate
  // (the query point prunes by distance, not by routing), so the whole
  // view's population is what must pay for the fan-out.
  bool knn_parallel_worth_it(std::size_t k) const {
    if (k == 0 || num_workers() <= 1) return false;
    std::size_t total = 0;
    for (const auto& shard : view_->shards) {
      total += shard->size();
      if (total >= fork_grain()) return true;
    }
    return false;
  }

  // TaskGroup fan-out over the routed shard run [lo, hi]: `visit(shard)`
  // runs concurrently per shard; a stopped sink short-circuits the
  // remaining spawns.
  template <typename ParSink, typename Visit>
  void visit_shards_par(std::size_t lo, std::size_t hi, const ParSink& sink,
                        Visit visit) const {
    TaskGroup tasks;
    for (std::size_t i = lo; i <= hi && !sink.stopped(); ++i) {
      const Index* shard = view_->shards[i].get();
      tasks.spawn([shard, visit] { visit(*shard); });
    }
    tasks.wait();
  }

  // TaskGroup fan-out accumulating `count(shard)` over the routed run.
  template <typename Count>
  std::size_t count_shards_par(std::size_t lo, std::size_t hi,
                               Count count) const {
    std::atomic<std::size_t> total{0};
    TaskGroup tasks;
    for (std::size_t i = lo; i <= hi; ++i) {
      const Index* shard = view_->shards[i].get();
      tasks.spawn([shard, count, &total] {
        total.fetch_add(count(*shard), std::memory_order_relaxed);
      });
    }
    tasks.wait();
    return total.load(std::memory_order_relaxed);
  }

  // Is the parallel engine worth its setup (sink buffers, task spawns) for
  // this routed shard run? Only when the run holds at least a grain's
  // worth of points — below that the fan-out degenerates to the
  // sequential visit plus pure overhead, exactly the hot small-query case
  // to keep lean.
  bool parallel_worth_it(std::pair<std::size_t, std::size_t> run) const {
    if (num_workers() <= 1) return false;
    const auto [lo, hi] = run;
    std::size_t total = 0;
    for (std::size_t i = lo; i <= hi; ++i) {
      total += view_->shards[i]->size();
      if (total >= fork_grain()) return true;
    }
    return false;
  }

  // Routing box of a ball (see ball_bounding_box above).
  static box_t ball_box(const point_t& q, double radius) {
    return ball_bounding_box(q, radius);
  }

  // The view's read-path histogram for `o`, or null when the view carries
  // no metrics (telemetry disabled / standalone view).
  telemetry::Histogram* read_hist(telemetry::ReadOp o) const {
    return view_->metrics ? &view_->metrics->read_hist(o) : nullptr;
  }

  std::shared_ptr<const view_t> view_;
};

}  // namespace psi::service
