// PSI-Lib service layer: published views and lock-free reads.
//
// A View is the immutable unit of publication: one shard map plus one
// read-only index handle per shard, stamped with the epoch that produced
// it. Readers acquire the current View with a single atomic load (see
// epoch.h) and run whole queries against it — a reader observes either all
// of a commit group or none of it, never a torn mix.
//
// Snapshot is the reader-facing wrapper: it pins a View alive and exposes
// the standard query API (knn / range_count / range_list / size) by fanning
// out over the View's shards and combining per-shard answers. Fan-out uses
// the shard map's box routing where the codec allows it; every shard also
// prunes through its own root bounding box, so over-broad routing costs
// O(1) per extra shard.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "psi/geometry/knn_buffer.h"
#include "psi/geometry/point.h"
#include "psi/service/shard_map.h"

namespace psi::service {

template <typename Index, typename Codec>
struct View {
  using index_t = Index;
  using point_t = typename Index::point_t;
  using box_t = typename Index::box_t;
  using coord_t = typename point_t::coord_t;
  static constexpr int kDim = point_t::kDim;
  using map_t = ShardMap<coord_t, kDim, Codec>;

  std::uint64_t epoch = 0;
  map_t map;
  std::vector<std::shared_ptr<const Index>> shards;

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards) n += s->size();
    return n;
  }
};

template <typename Index, typename Codec>
class Snapshot {
 public:
  using view_t = View<Index, Codec>;
  using point_t = typename view_t::point_t;
  using box_t = typename view_t::box_t;

  explicit Snapshot(std::shared_ptr<const view_t> view)
      : view_(std::move(view)) {}

  std::uint64_t epoch() const { return view_->epoch; }
  std::size_t num_shards() const { return view_->shards.size(); }
  std::size_t size() const { return view_->size(); }

  // k nearest neighbours across all shards, merged through one bounded
  // buffer. Shards are visited in order of root-box distance and a shard
  // is skipped once the buffer is full and the shard's box cannot beat the
  // current k-th distance — with balanced shards a query typically touches
  // one or two of them, so the fan-out cost stays near K=1. Backends
  // without bounds() fall back to visiting every shard (each still prunes
  // internally from its own root).
  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    struct Cand {
      double dist2;
      const Index* shard;
    };
    std::vector<Cand> order;
    order.reserve(view_->shards.size());
    for (const auto& shard : view_->shards) {
      if (shard->size() == 0) continue;
      double d = 0;
      if constexpr (requires { shard->bounds(); }) {
        d = min_squared_distance(shard->bounds(), q);
      }
      order.push_back(Cand{d, shard.get()});
    }
    std::sort(order.begin(), order.end(),
              [](const Cand& a, const Cand& b) { return a.dist2 < b.dist2; });
    KnnBuffer<point_t> buf(k);
    for (const Cand& c : order) {
      if (buf.full() && c.dist2 >= buf.worst()) break;  // sorted: all done
      for (const auto& p : c.shard->knn(q, k)) {
        buf.offer(squared_distance(p, q), p);
      }
    }
    auto entries = buf.sorted();
    std::vector<point_t> out;
    out.reserve(entries.size());
    for (const auto& e : entries) out.push_back(e.point);
    return out;
  }

  std::size_t range_count(const box_t& query) const {
    const auto [lo, hi] = view_->map.shard_range_for_box(query);
    std::size_t total = 0;
    for (std::size_t i = lo; i <= hi; ++i) {
      total += view_->shards[i]->range_count(query);
    }
    return total;
  }

  std::vector<point_t> range_list(const box_t& query) const {
    const auto [lo, hi] = view_->map.shard_range_for_box(query);
    std::vector<point_t> out;
    for (std::size_t i = lo; i <= hi; ++i) {
      auto part = view_->shards[i]->range_list(query);
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  // Multiset of all indexed points (test support; O(n)).
  std::vector<point_t> flatten() const {
    std::vector<point_t> out;
    out.reserve(size());
    for (const auto& shard : view_->shards) {
      auto part = shard->flatten();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  const view_t& view() const { return *view_; }

 private:
  std::shared_ptr<const view_t> view_;
};

}  // namespace psi::service
