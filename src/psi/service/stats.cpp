#include "psi/service/service_stats.h"

#include <algorithm>
#include <sstream>

namespace psi::service {

std::size_t ServiceStats::max_shard_size() const {
  if (shard_sizes.empty()) return 0;
  return *std::max_element(shard_sizes.begin(), shard_sizes.end());
}

std::size_t ServiceStats::min_shard_size() const {
  if (shard_sizes.empty()) return 0;
  return *std::min_element(shard_sizes.begin(), shard_sizes.end());
}

double ServiceStats::imbalance() const {
  if (shard_sizes.empty() || size_total == 0) return 1.0;
  const double mean = static_cast<double>(size_total) /
                      static_cast<double>(shard_sizes.size());
  if (mean == 0) return 1.0;
  return static_cast<double>(max_shard_size()) / mean;
}

std::string ServiceStats::json() const {
  std::ostringstream os;
  os << "{\"epoch\":" << epoch << ",\"commits\":" << commits
     << ",\"splits\":" << splits << ",\"merges\":" << merges
     << ",\"grace_yields\":" << grace_yields
     << ",\"replica_rebuilds\":" << replica_rebuilds
     << ",\"ops_insert\":" << ops_insert << ",\"ops_delete\":" << ops_delete
     << ",\"ops_knn\":" << ops_knn
     << ",\"ops_range_count\":" << ops_range_count
     << ",\"ops_range_list\":" << ops_range_list
     << ",\"ops_ball\":" << ops_ball
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses
     << ",\"cache_cross_epoch_hits\":" << cache_cross_epoch_hits
     << ",\"cache_oversize_skips\":" << cache_oversize_skips
     << ",\"cache_bytes\":" << cache_bytes
     << ",\"num_shards\":" << num_shards << ",\"size_total\":" << size_total
     << ",\"max_shard\":" << max_shard_size()
     << ",\"min_shard\":" << min_shard_size() << ",\"shard_sizes\":[";
  for (std::size_t i = 0; i < shard_sizes.size(); ++i) {
    if (i) os << ',';
    os << shard_sizes[i];
  }
  os << "]}";
  return os.str();
}

}  // namespace psi::service
