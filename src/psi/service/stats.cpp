#include "psi/service/service_stats.h"

#include <algorithm>
#include <sstream>

namespace psi::service {

namespace {

// {"count":..,"p50":..,"p95":..,"p99":..,"max":..,"mean":..} — the keys
// p50/p95/p99 are load-bearing: CI greps BENCH_JSON lines for them.
void put_summary(std::ostringstream& os, const telemetry::LatencySummary& s) {
  os << "{\"count\":" << s.count << ",\"p50\":" << s.p50
     << ",\"p95\":" << s.p95 << ",\"p99\":" << s.p99 << ",\"max\":" << s.max
     << ",\"mean\":" << s.mean << '}';
}

}  // namespace

std::size_t ServiceStats::max_shard_size() const {
  if (shard_sizes.empty()) return 0;
  return *std::max_element(shard_sizes.begin(), shard_sizes.end());
}

std::size_t ServiceStats::min_shard_size() const {
  if (shard_sizes.empty()) return 0;
  return *std::min_element(shard_sizes.begin(), shard_sizes.end());
}

double ServiceStats::imbalance() const {
  if (shard_sizes.empty() || size_total == 0) return 1.0;
  const double mean = static_cast<double>(size_total) /
                      static_cast<double>(shard_sizes.size());
  if (mean == 0) return 1.0;
  return static_cast<double>(max_shard_size()) / mean;
}

std::vector<std::pair<std::size_t, double>> ServiceStats::top_hot_shards(
    std::size_t n) const {
  std::vector<std::pair<std::size_t, double>> out;
  out.reserve(shard_heat_decayed.size());
  for (std::size_t i = 0; i < shard_heat_decayed.size(); ++i) {
    out.emplace_back(i, shard_heat_decayed[i]);
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::string ServiceStats::json() const {
  std::ostringstream os;
  os << "{\"stats_version\":" << stats_version << ",\"epoch\":" << epoch
     << ",\"commits\":" << commits
     << ",\"splits\":" << splits << ",\"merges\":" << merges
     << ",\"grace_yields\":" << grace_yields
     << ",\"replica_rebuilds\":" << replica_rebuilds
     << ",\"arena_bytes\":" << arena_bytes
     << ",\"arena_chunks\":" << arena_chunks
     << ",\"handoff_raw_copies\":" << handoff_raw_copies
     << ",\"ops_insert\":" << ops_insert << ",\"ops_delete\":" << ops_delete
     << ",\"ops_knn\":" << ops_knn
     << ",\"ops_range_count\":" << ops_range_count
     << ",\"ops_range_list\":" << ops_range_list
     << ",\"ops_ball\":" << ops_ball
     << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses
     << ",\"cache_cross_epoch_hits\":" << cache_cross_epoch_hits
     << ",\"cache_oversize_skips\":" << cache_oversize_skips
     << ",\"cache_torn_skips\":" << cache_torn_skips
     << ",\"cache_bytes\":" << cache_bytes
     << ",\"pinned_reads\":" << pinned_reads
     << ",\"epoch_retired_errors\":" << epoch_retired_errors
     << ",\"stream_chunks\":" << stream_chunks
     << ",\"stream_backpressure_waits\":" << stream_backpressure_waits
     << ",\"wal_appends\":" << wal_appends << ",\"wal_bytes\":" << wal_bytes
     << ",\"recovery_ms\":" << recovery_ms << ",\"wal_fsync\":";
  put_summary(os, wal_fsync);
  os << ",\"num_shards\":" << num_shards << ",\"size_total\":" << size_total
     << ",\"max_shard\":" << max_shard_size()
     << ",\"min_shard\":" << min_shard_size() << ",\"shard_sizes\":[";
  for (std::size_t i = 0; i < shard_sizes.size(); ++i) {
    if (i) os << ',';
    os << shard_sizes[i];
  }
  os << ']';
  if (!latency.empty()) {
    os << ",\"latency\":{";
    for (std::size_t i = 0; i < latency.size(); ++i) {
      if (i) os << ',';
      os << '"' << telemetry::queued_op_name(i) << "\":";
      put_summary(os, latency[i]);
    }
    os << '}';
  }
  if (!stages.empty()) {
    os << ",\"stages\":{";
    for (std::size_t i = 0; i < stages.size(); ++i) {
      if (i) os << ',';
      os << '"' << telemetry::stage_name(i) << "\":";
      put_summary(os, stages[i]);
    }
    os << '}';
  }
  if (!shard_heat.empty()) {
    os << ",\"shard_heat_reads\":[";
    for (std::size_t i = 0; i < shard_heat.size(); ++i) {
      if (i) os << ',';
      os << shard_heat[i].reads;
    }
    os << "],\"shard_heat_writes\":[";
    for (std::size_t i = 0; i < shard_heat.size(); ++i) {
      if (i) os << ',';
      os << shard_heat[i].writes;
    }
    os << "],\"shard_heat\":[";
    for (std::size_t i = 0; i < shard_heat_decayed.size(); ++i) {
      if (i) os << ',';
      os << shard_heat_decayed[i];
    }
    os << "],\"hot_shards\":[";
    const auto hot = top_hot_shards(4);
    for (std::size_t i = 0; i < hot.size(); ++i) {
      if (i) os << ',';
      os << hot[i].first;
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

}  // namespace psi::service
