// TcpTransport: blocking sockets + a per-node poll loop. POSIX only (the
// library targets Linux; see transport.h for the contract).
//
// Server side: every bound node owns one listening socket and one server
// thread. The thread polls the listen socket plus all accepted
// connections; a readable connection delivers exactly one length-prefixed
// frame (wire.h), whose decoded Message is handed to the node's handler
// inline — replies are written back on the same connection before the next
// frame is read. One node's requests therefore serialise on its server
// thread; concurrency across nodes comes from each node having its own
// thread, and handlers stay free of cross-node calls (node.h's protocol is
// strictly coordinator->host), so no cycle of blocked server threads can
// form.
//
// Client side: call() keeps a small pool of idle connections per
// destination, so concurrent callers use distinct sockets instead of
// serialising on one. A connection that errors mid-call is closed and the
// error surfaces as TransportError; the next call opens a fresh one.

#include "psi/net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace psi::net {

namespace {

// Loop a full read; false on clean EOF before any byte, throws on error or
// EOF mid-object.
bool read_full(int fd, void* buf, std::size_t n, bool eof_ok_at_start) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) {
      if (got == 0 && eof_ok_at_start) return false;
      throw TransportError("connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("read failed: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_full(int fd, const void* buf, std::size_t n) {
  auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, p + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("write failed: ") +
                           std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

// Read one frame (length word + body) and decode it. False on clean EOF.
bool read_frame(int fd, Message& out) {
  std::uint8_t len_bytes[4];
  if (!read_full(fd, len_bytes, 4, /*eof_ok_at_start=*/true)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(len_bytes[i]) << (8 * i);
  }
  if (len < kFramePreludeBytes || len > kMaxFrameBytes) {
    throw WireError("bad frame length");
  }
  std::vector<std::uint8_t> body(len);
  read_full(fd, body.data(), body.size(), /*eof_ok_at_start=*/false);
  out = decode_frame_body(std::move(body));
  return true;
}

void write_frame(int fd, const Message& m) {
  const std::vector<std::uint8_t> bytes = encode_frame(m);
  write_full(fd, bytes.data(), bytes.size());
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

// Is a full-or-partial frame already buffered on `fd`? (Zero-timeout poll —
// never blocks.) Used to batch small pipelined requests at the wire: the
// server drains what a client already sent before returning to its poll
// loop.
bool bytes_pending(int fd) {
  pollfd p{fd, POLLIN, 0};
  return ::poll(&p, 1, 0) > 0 && (p.revents & POLLIN) != 0;
}

// Server-side stream channel: chunk frames go out on the request's own
// connection, gated by the credit window the client granted in the request
// (and tops up with kQueryCredit frames as it consumes chunks). A send()
// with no credit blocks reading the connection until a grant arrives —
// SO_RCVTIMEO (5s) bounds how long a stalled client can pin the server
// thread before the stream fails and the connection is dropped.
class TcpStreamWriter final : public StreamWriter {
 public:
  explicit TcpStreamWriter(int fd) : fd_(fd) {}

  bool send(const Message& m) override {
    if (failed_) return false;
    try {
      if (armed_ && credit_ == 0) await_credit();
      write_frame(fd_, m);
      if (armed_) --credit_;
    } catch (const std::exception&) {
      failed_ = true;
    }
    return !failed_;
  }

  void arm(std::uint32_t credit) override {
    armed_ = true;
    credit_ = credit;
  }

  std::uint64_t backpressure_waits() const override { return waits_; }

  // A failed stream leaves the connection mid-protocol; the caller must
  // drop it rather than write a final frame the client would misparse.
  bool failed() const { return failed_; }
  bool streamed() const { return armed_; }

 private:
  void await_credit() {
    ++waits_;
    while (credit_ == 0) {
      Message m;
      if (!read_frame(fd_, m)) {
        throw TransportError("peer closed mid-stream");
      }
      if (m.type != MsgType::kQueryCredit) {
        throw TransportError("expected credit frame mid-stream");
      }
      credit_ += WireReader(m).get_u32();
    }
  }

  int fd_;
  bool armed_ = false;
  bool failed_ = false;
  std::uint32_t credit_ = 0;
  std::uint64_t waits_ = 0;
};

}  // namespace

struct TcpTransport::Server {
  NodeId id = 0;
  int listen_fd = -1;
  std::uint16_t port = 0;
  stream_handler_t handler;
  std::atomic<bool> stop{false};
  std::thread thread;
  std::vector<int> conns;

  // Frames served per poll wakeup of one connection before yielding back
  // to the poll loop — lets a burst of small pipelined requests (or stale
  // credit grants left over from a finished stream) drain in one visit
  // instead of one 50ms-bounded poll round each, without starving other
  // connections.
  static constexpr int kMaxBatchPerVisit = 16;

  void run() {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<pollfd> fds;
      fds.reserve(conns.size() + 1);
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
      for (int fd : conns) fds.push_back(pollfd{fd, POLLIN, 0});
      const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
      if (rc <= 0) continue;  // timeout (stop re-check) or EINTR
      if (fds[0].revents & POLLIN) {
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn >= 0) {
          const int one = 1;
          ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          // Bound mid-frame reads: a peer that sends a frame prefix and
          // stalls must not wedge this node's (single) server thread —
          // read_full fails with EAGAIN after 5s and the connection is
          // dropped. Clients write whole frames in one call(), so an
          // honest peer never trips this.
          timeval rcv_timeout{5, 0};
          ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout,
                       sizeof(rcv_timeout));
          conns.push_back(conn);
        }
      }
      // Iterate over the polled snapshot; closed connections are removed
      // from `conns` as they are discovered.
      for (std::size_t i = 1; i < fds.size(); ++i) {
        if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const int fd = fds[i].fd;
        bool alive = true;
        int served = 0;
        do {
          alive = serve_one(fd);
        } while (alive && ++served < kMaxBatchPerVisit && bytes_pending(fd));
        if (!alive) {
          close_quietly(fd);
          conns.erase(std::find(conns.begin(), conns.end(), fd));
        }
      }
    }
    for (int fd : conns) close_quietly(fd);
    conns.clear();
    close_quietly(listen_fd);
    listen_fd = -1;
  }

  // Handle one request frame on `fd`; false when the connection is done.
  bool serve_one(int fd) {
    Message req;
    try {
      if (!read_frame(fd, req)) return false;  // clean EOF
    } catch (const std::exception&) {
      return false;  // torn frame / protocol mismatch: drop the connection
    }
    // A credit grant the stream's writer never had to read (the producer
    // finished without blocking) arrives here after the stream is done:
    // not a request, just skip it.
    if (req.type == MsgType::kQueryCredit) return true;
    TcpStreamWriter stream(fd);
    Message reply;
    try {
      reply = handler(Transport::kUnknownPeer, std::move(req), stream);
    } catch (const std::exception& e) {
      reply = make_error(e.what());
    }
    if (stream.failed()) return false;  // mid-stream break: unrecoverable
    try {
      write_frame(fd, reply);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
};

TcpTransport::TcpTransport() = default;

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::bind_stream(NodeId node, stream_handler_t handler) {
  auto server = std::make_unique<Server>();
  server->id = node;
  server->handler = std::move(handler);

  server->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd < 0) {
    throw TransportError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(server->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(server->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(server->listen_fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    close_quietly(server->listen_fd);
    throw TransportError("bind/listen failed: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(server->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  server->port = ntohs(addr.sin_port);

  {
    std::lock_guard<std::mutex> g(mu_);
    if (down_) {
      close_quietly(server->listen_fd);
      throw TransportError("transport is shut down");
    }
    if (servers_.count(node) != 0) {
      close_quietly(server->listen_fd);
      throw TransportError("node " + std::to_string(node) + " already bound");
    }
    auto pit = peers_.find(node);  // re-bind after unbind/add_peer: no leak
    if (pit != peers_.end()) {
      for (int fd : pit->second.idle_fds) close_quietly(fd);
    }
    peers_[node] = Peer{"127.0.0.1", server->port, {}};
    Server* raw = server.get();
    raw->thread = std::thread([raw] { raw->run(); });
    servers_[node] = std::move(server);
  }
}

void TcpTransport::unbind(NodeId node) {
  std::unique_ptr<Server> server;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = servers_.find(node);
    if (it == servers_.end()) return;
    server = std::move(it->second);
    servers_.erase(it);
    auto pit = peers_.find(node);
    if (pit != peers_.end()) {
      for (int fd : pit->second.idle_fds) close_quietly(fd);
      peers_.erase(pit);
    }
  }
  server->stop.store(true, std::memory_order_release);
  server->thread.join();
}

void TcpTransport::add_peer(NodeId node, const std::string& host,
                            std::uint16_t port) {
  std::lock_guard<std::mutex> g(mu_);
  // Re-registering a peer (e.g. the remote restarted on a new port) must
  // not leak the pooled connections to its old address.
  auto it = peers_.find(node);
  if (it != peers_.end()) {
    for (int fd : it->second.idle_fds) close_quietly(fd);
  }
  peers_[node] = Peer{host, port, {}};
}

std::uint16_t TcpTransport::port_of(NodeId node) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = servers_.find(node);
  if (it == servers_.end()) {
    throw TransportError("node " + std::to_string(node) +
                         " not bound locally");
  }
  return it->second->port;
}

int TcpTransport::connect_to(const Peer& peer) const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    close_quietly(fd);
    throw TransportError("bad peer address: " + peer.host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    close_quietly(fd);
    throw TransportError("connect to " + peer.host + ":" +
                         std::to_string(peer.port) + " failed: " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Message TcpTransport::call(NodeId dest, Message req) {
  return do_call(dest, std::move(req), nullptr);
}

Message TcpTransport::call_stream(NodeId dest, Message req,
                                  const chunk_cb_t& on_chunk) {
  return do_call(dest, std::move(req), &on_chunk);
}

Message TcpTransport::do_call(NodeId dest, Message req,
                              const chunk_cb_t* on_chunk) {
  int fd = -1;
  bool from_pool = false;
  Peer peer_copy;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (down_) throw TransportError("transport is shut down");
    auto it = peers_.find(dest);
    if (it == peers_.end()) {
      throw TransportError("no route to node " + std::to_string(dest));
    }
    peer_copy = it->second;
    peer_copy.idle_fds.clear();  // address only; the pool stays in the map
    if (!it->second.idle_fds.empty()) {
      fd = it->second.idle_fds.back();
      it->second.idle_fds.pop_back();
      from_pool = true;
    }
  }
  if (fd < 0) fd = connect_to(peer_copy);

  // Send the request and consume the reply: intermediate chunk frames go
  // to on_chunk (each consumed chunk grants the peer one more of credit),
  // the first non-chunk frame is the result. `delivered` marks the point
  // of no retry. `abandoned` = on_chunk asked to stop: the connection is
  // mid-stream and must be closed, but the call itself succeeds.
  bool delivered = false;
  bool abandoned = false;
  auto exchange = [&](int xfd) -> Message {
    write_frame(xfd, req);
    for (;;) {
      Message m;
      if (!read_frame(xfd, m)) {
        throw TransportError("peer closed connection before replying");
      }
      if (!is_stream_chunk(m.type)) return m;
      if (on_chunk == nullptr) {
        throw TransportError("unexpected stream chunk on a plain call");
      }
      delivered = true;
      if (!(*on_chunk)(std::move(m))) {
        abandoned = true;
        return Message{MsgType::kOk, {}};
      }
      WireWriter grant;
      grant.put_u32(1);
      write_frame(xfd, std::move(grant).finish(MsgType::kQueryCredit));
    }
  };

  Message reply;
  try {
    reply = exchange(fd);
  } catch (...) {
    close_quietly(fd);
    // A pooled connection may have died while idle (peer dropped it, RST
    // on a long-idle socket): one retry on a *fresh* connection before
    // failing the caller — but ONLY for idempotent messages, and ONLY if
    // no chunk reached on_chunk yet (a consumer that already saw part of
    // the stream must not see the stream restart from the top). A commit
    // batch may have been applied before the ack was lost; re-sending it
    // would double-apply the updates, so its failure must surface to the
    // coordinator (whose partial-commit path republishes the route) for
    // at-most-once semantics. Queries, fetches, installs (replace by
    // key+version), drops, and stats are all safe to repeat.
    const bool idempotent = req.type != MsgType::kCommitBatch;
    if (!from_pool || !idempotent || delivered) throw;
    fd = connect_to(peer_copy);
    try {
      reply = exchange(fd);
    } catch (...) {
      close_quietly(fd);
      throw;
    }
  }

  if (abandoned) {
    // Undrained stream left on the wire: the connection cannot be pooled.
    close_quietly(fd);
    return reply;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = peers_.find(dest);
    if (!down_ && it != peers_.end() && it->second.idle_fds.size() < 8) {
      it->second.idle_fds.push_back(fd);
      fd = -1;
    }
  }
  close_quietly(fd);  // pool full / peer gone / shut down
  return reply;
}

void TcpTransport::shutdown() {
  std::map<NodeId, std::unique_ptr<Server>> servers;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (down_) return;
    down_ = true;
    servers.swap(servers_);
    for (auto& [id, peer] : peers_) {
      for (int fd : peer.idle_fds) close_quietly(fd);
      peer.idle_fds.clear();
    }
  }
  for (auto& [id, server] : servers) {
    server->stop.store(true, std::memory_order_release);
    server->thread.join();
  }
}

}  // namespace psi::net
