// TcpTransport: blocking sockets + a per-node poll loop. POSIX only (the
// library targets Linux; see transport.h for the contract).
//
// Server side: every bound node owns one listening socket and one server
// thread. The thread polls the listen socket plus all accepted
// connections; a readable connection delivers exactly one length-prefixed
// frame (wire.h), whose decoded Message is handed to the node's handler
// inline — replies are written back on the same connection before the next
// frame is read. One node's requests therefore serialise on its server
// thread; concurrency across nodes comes from each node having its own
// thread, and handlers stay free of cross-node calls (node.h's protocol is
// strictly coordinator->host), so no cycle of blocked server threads can
// form.
//
// Client side: call() keeps a small pool of idle connections per
// destination, so concurrent callers use distinct sockets instead of
// serialising on one. A connection that errors mid-call is closed and the
// error surfaces as TransportError; the next call opens a fresh one.

#include "psi/net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

namespace psi::net {

namespace {

// Loop a full read; false on clean EOF before any byte, throws on error or
// EOF mid-object.
bool read_full(int fd, void* buf, std::size_t n, bool eof_ok_at_start) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) {
      if (got == 0 && eof_ok_at_start) return false;
      throw TransportError("connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("read failed: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_full(int fd, const void* buf, std::size_t n) {
  auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, p + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("write failed: ") +
                           std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

// Read one frame (length word + body) and decode it. False on clean EOF.
bool read_frame(int fd, Message& out) {
  std::uint8_t len_bytes[4];
  if (!read_full(fd, len_bytes, 4, /*eof_ok_at_start=*/true)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(len_bytes[i]) << (8 * i);
  }
  if (len < kFramePreludeBytes || len > kMaxFrameBytes) {
    throw WireError("bad frame length");
  }
  std::vector<std::uint8_t> body(len);
  read_full(fd, body.data(), body.size(), /*eof_ok_at_start=*/false);
  out = decode_frame_body(std::move(body));
  return true;
}

void write_frame(int fd, const Message& m) {
  const std::vector<std::uint8_t> bytes = encode_frame(m);
  write_full(fd, bytes.data(), bytes.size());
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

struct TcpTransport::Server {
  NodeId id = 0;
  int listen_fd = -1;
  std::uint16_t port = 0;
  handler_t handler;
  std::atomic<bool> stop{false};
  std::thread thread;
  std::vector<int> conns;

  void run() {
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<pollfd> fds;
      fds.reserve(conns.size() + 1);
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
      for (int fd : conns) fds.push_back(pollfd{fd, POLLIN, 0});
      const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
      if (rc <= 0) continue;  // timeout (stop re-check) or EINTR
      if (fds[0].revents & POLLIN) {
        const int conn = ::accept(listen_fd, nullptr, nullptr);
        if (conn >= 0) {
          const int one = 1;
          ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          // Bound mid-frame reads: a peer that sends a frame prefix and
          // stalls must not wedge this node's (single) server thread —
          // read_full fails with EAGAIN after 5s and the connection is
          // dropped. Clients write whole frames in one call(), so an
          // honest peer never trips this.
          timeval rcv_timeout{5, 0};
          ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout,
                       sizeof(rcv_timeout));
          conns.push_back(conn);
        }
      }
      // Iterate over the polled snapshot; closed connections are removed
      // from `conns` as they are discovered.
      for (std::size_t i = 1; i < fds.size(); ++i) {
        if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const int fd = fds[i].fd;
        if (!serve_one(fd)) {
          close_quietly(fd);
          conns.erase(std::find(conns.begin(), conns.end(), fd));
        }
      }
    }
    for (int fd : conns) close_quietly(fd);
    conns.clear();
    close_quietly(listen_fd);
    listen_fd = -1;
  }

  // Handle one request frame on `fd`; false when the connection is done.
  bool serve_one(int fd) {
    Message req;
    try {
      if (!read_frame(fd, req)) return false;  // clean EOF
    } catch (const std::exception&) {
      return false;  // torn frame / protocol mismatch: drop the connection
    }
    Message reply;
    try {
      reply = handler(Transport::kUnknownPeer, std::move(req));
    } catch (const std::exception& e) {
      reply = make_error(e.what());
    }
    try {
      write_frame(fd, reply);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
};

TcpTransport::TcpTransport() = default;

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::bind(NodeId node, handler_t handler) {
  auto server = std::make_unique<Server>();
  server->id = node;
  server->handler = std::move(handler);

  server->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd < 0) {
    throw TransportError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(server->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(server->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(server->listen_fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    close_quietly(server->listen_fd);
    throw TransportError("bind/listen failed: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(server->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  server->port = ntohs(addr.sin_port);

  {
    std::lock_guard<std::mutex> g(mu_);
    if (down_) {
      close_quietly(server->listen_fd);
      throw TransportError("transport is shut down");
    }
    if (servers_.count(node) != 0) {
      close_quietly(server->listen_fd);
      throw TransportError("node " + std::to_string(node) + " already bound");
    }
    auto pit = peers_.find(node);  // re-bind after unbind/add_peer: no leak
    if (pit != peers_.end()) {
      for (int fd : pit->second.idle_fds) close_quietly(fd);
    }
    peers_[node] = Peer{"127.0.0.1", server->port, {}};
    Server* raw = server.get();
    raw->thread = std::thread([raw] { raw->run(); });
    servers_[node] = std::move(server);
  }
}

void TcpTransport::unbind(NodeId node) {
  std::unique_ptr<Server> server;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = servers_.find(node);
    if (it == servers_.end()) return;
    server = std::move(it->second);
    servers_.erase(it);
    auto pit = peers_.find(node);
    if (pit != peers_.end()) {
      for (int fd : pit->second.idle_fds) close_quietly(fd);
      peers_.erase(pit);
    }
  }
  server->stop.store(true, std::memory_order_release);
  server->thread.join();
}

void TcpTransport::add_peer(NodeId node, const std::string& host,
                            std::uint16_t port) {
  std::lock_guard<std::mutex> g(mu_);
  // Re-registering a peer (e.g. the remote restarted on a new port) must
  // not leak the pooled connections to its old address.
  auto it = peers_.find(node);
  if (it != peers_.end()) {
    for (int fd : it->second.idle_fds) close_quietly(fd);
  }
  peers_[node] = Peer{host, port, {}};
}

std::uint16_t TcpTransport::port_of(NodeId node) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = servers_.find(node);
  if (it == servers_.end()) {
    throw TransportError("node " + std::to_string(node) +
                         " not bound locally");
  }
  return it->second->port;
}

int TcpTransport::connect_to(const Peer& peer) const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError(std::string("socket failed: ") +
                         std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    close_quietly(fd);
    throw TransportError("bad peer address: " + peer.host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    close_quietly(fd);
    throw TransportError("connect to " + peer.host + ":" +
                         std::to_string(peer.port) + " failed: " + err);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Message TcpTransport::call(NodeId dest, Message req) {
  int fd = -1;
  bool from_pool = false;
  Peer peer_copy;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (down_) throw TransportError("transport is shut down");
    auto it = peers_.find(dest);
    if (it == peers_.end()) {
      throw TransportError("no route to node " + std::to_string(dest));
    }
    peer_copy = it->second;
    peer_copy.idle_fds.clear();  // address only; the pool stays in the map
    if (!it->second.idle_fds.empty()) {
      fd = it->second.idle_fds.back();
      it->second.idle_fds.pop_back();
      from_pool = true;
    }
  }
  if (fd < 0) fd = connect_to(peer_copy);

  Message reply;
  try {
    write_frame(fd, req);
    if (!read_frame(fd, reply)) {
      throw TransportError("peer closed connection before replying");
    }
  } catch (...) {
    close_quietly(fd);
    // A pooled connection may have died while idle (peer dropped it, RST
    // on a long-idle socket): one retry on a *fresh* connection before
    // failing the caller — but ONLY for idempotent messages. A commit
    // batch may have been applied before the ack was lost; re-sending it
    // would double-apply the updates, so its failure must surface to the
    // coordinator (whose partial-commit path republishes the route) for
    // at-most-once semantics. Queries, fetches, installs (replace by
    // key+version), drops, and stats are all safe to repeat.
    const bool idempotent = req.type != MsgType::kCommitBatch;
    if (!from_pool || !idempotent) throw;
    fd = connect_to(peer_copy);
    try {
      write_frame(fd, req);
      if (!read_frame(fd, reply)) {
        throw TransportError("peer closed connection before replying");
      }
    } catch (...) {
      close_quietly(fd);
      throw;
    }
  }

  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = peers_.find(dest);
    if (!down_ && it != peers_.end() && it->second.idle_fds.size() < 8) {
      it->second.idle_fds.push_back(fd);
      fd = -1;
    }
  }
  close_quietly(fd);  // pool full / peer gone / shut down
  return reply;
}

void TcpTransport::shutdown() {
  std::map<NodeId, std::unique_ptr<Server>> servers;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (down_) return;
    down_ = true;
    servers.swap(servers_);
    for (auto& [id, peer] : peers_) {
      for (int fd : peer.idle_fds) close_quietly(fd);
      peer.idle_fds.clear();
    }
  }
  for (auto& [id, server] : servers) {
    server->stop.store(true, std::memory_order_release);
    server->thread.join();
  }
}

}  // namespace psi::net
