// PSI-Lib net layer: the transport abstraction.
//
// A Transport is the fabric a set of nodes communicates over. Its contract
// is deliberately tiny — synchronous request/response RPC:
//
//   * bind(node, handler): host a node on this fabric. The handler
//     receives every request addressed to the node and returns the reply.
//   * call(dest, msg): deliver one request and block for its reply.
//
// Two implementations:
//
//   * LoopbackTransport — in-process, zero-copy: call() moves the message
//     straight into the destination's handler on the *caller's* thread.
//     No serialisation round-trip is forced on the payload bytes (they
//     were already encoded by the caller; the handler decodes the same
//     buffer). This is the single-node deployment shape and the unit-test
//     substrate — identical protocol code paths, no sockets.
//   * TcpTransport (transport.cpp) — real sockets on a host network.
//     Each bound node owns a listening socket (127.0.0.1, ephemeral port
//     by default) and a server thread running a poll loop over its
//     accepted connections; callers keep small per-destination connection
//     pools. Blocking I/O + poll, no external dependencies.
//
// Threading contract: call() may be invoked from any number of threads
// concurrently. Handlers must therefore be thread-safe — over loopback
// they run on concurrent caller threads; over TCP they run on the node's
// server thread (which serialises that node's requests, a strictly
// *weaker* concurrency regime). Handlers must not call() back into a node
// that is blocked waiting on them — the protocol in node.h is strictly
// coordinator->host, so the cycle cannot arise there.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "psi/net/wire.h"
#include "psi/service/shard_map.h"  // NodeId

namespace psi::net {

using service::NodeId;

// Per-call channel a *streaming* handler pushes intermediate frames
// through before returning its final reply (the v3 chunked query replies,
// wire.h). The transport owns the concrete writer: over TCP, send() writes
// a frame to the caller's connection and blocks while the stream is out of
// credit (the caller grants more with kQueryCredit frames); over loopback,
// send() invokes the caller's chunk callback synchronously and credit
// never applies. Handlers that never stream simply ignore the writer.
class StreamWriter {
 public:
  virtual ~StreamWriter() = default;

  // Send one intermediate frame to the caller. False = the receiver
  // aborted the stream (or the connection died); the handler should stop
  // producing and return its final frame normally.
  virtual bool send(const Message& m) = 0;

  // Enable credit accounting with this initial window (decoded from the
  // request by the handler). An unarmed writer never blocks.
  virtual void arm(std::uint32_t credit) { (void)credit; }

  // How many times send() blocked waiting for a credit grant.
  virtual std::uint64_t backpressure_waits() const { return 0; }
};

class Transport {
 public:
  // A node's request handler: full Message in, reply Message out. `from`
  // identifies the calling node when known (loopback tracks it; TCP peers
  // are identified by connection, reported as kUnknownPeer).
  using handler_t = std::function<Message(NodeId from, Message req)>;
  // The streaming-capable handler shape every node is bound with
  // internally: plain handlers are adapted by bind() below and never see
  // the writer.
  using stream_handler_t =
      std::function<Message(NodeId from, Message req, StreamWriter& stream)>;
  // Client-side chunk consumer for call_stream: invoked per intermediate
  // frame in arrival order; returning true grants the stream one more
  // chunk of credit, false abandons the stream.
  using chunk_cb_t = std::function<bool(Message chunk)>;

  static constexpr NodeId kUnknownPeer = ~NodeId{0};

  virtual ~Transport() = default;

  // Host `node` on this fabric. Must not already be bound.
  void bind(NodeId node, handler_t handler) {
    bind_stream(node, [h = std::move(handler)](NodeId from, Message req,
                                               StreamWriter&) {
      return h(from, std::move(req));
    });
  }

  // Host `node` with a handler that may stream intermediate frames.
  virtual void bind_stream(NodeId node, stream_handler_t handler) = 0;

  // Stop serving `node` (its handler will not be invoked again once this
  // returns). In-flight handler executions complete first.
  virtual void unbind(NodeId node) = 0;

  // Deliver one request to `dest` and block for the reply. Throws
  // TransportError if the destination is unknown or unreachable (or if
  // the peer streams chunks at a call that did not ask for them).
  virtual Message call(NodeId dest, Message req) = 0;

  // Deliver one request and consume its streamed reply: every
  // intermediate chunk frame (wire.h is_stream_chunk) lands in `on_chunk`
  // in order, and the first non-chunk frame ends the call and is
  // returned. If on_chunk returns false the stream is abandoned (over TCP
  // the connection is closed) and an empty kOk message returned.
  virtual Message call_stream(NodeId dest, Message req,
                              const chunk_cb_t& on_chunk) = 0;

  // Calling-node identity stamped on loopback requests (optional;
  // diagnostic only).
  virtual Message call_from(NodeId src, NodeId dest, Message req) {
    (void)src;
    return call(dest, std::move(req));
  }
};

struct TransportError : std::runtime_error {
  explicit TransportError(const std::string& what)
      : std::runtime_error("transport: " + what) {}
};

// ---------------------------------------------------------------------------
// LoopbackTransport
// ---------------------------------------------------------------------------

class LoopbackTransport final : public Transport {
 public:
  void bind_stream(NodeId node, stream_handler_t handler) override {
    std::lock_guard<std::mutex> g(mu_);
    auto& slot = nodes_[node];
    if (slot != nullptr) {
      throw TransportError("loopback: node " + std::to_string(node) +
                           " already bound");
    }
    slot = std::make_shared<Slot>();
    slot->handler = std::move(handler);
  }

  // Honours the contract: returns only once every in-flight handler
  // execution has completed — the handler typically captures the bound
  // object's `this` (ShardHost), whose destructor calls unbind precisely
  // to make its teardown safe against racing callers.
  void unbind(NodeId node) override {
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> g(mu_);
      auto it = nodes_.find(node);
      if (it == nodes_.end()) return;
      slot = std::move(it->second);
      nodes_.erase(it);
    }
    // Callers increment `active` under mu_ before invoking, so once the
    // node is out of the map this count only decreases.
    while (slot->active.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }

  Message call(NodeId dest, Message req) override {
    return invoke(kUnknownPeer, dest, std::move(req), nullptr);
  }

  Message call_from(NodeId src, NodeId dest, Message req) override {
    return invoke(src, dest, std::move(req), nullptr);
  }

  Message call_stream(NodeId dest, Message req,
                      const chunk_cb_t& on_chunk) override {
    return invoke(kUnknownPeer, dest, std::move(req), &on_chunk);
  }

 private:
  struct Slot {
    stream_handler_t handler;
    std::atomic<int> active{0};  // handler executions in flight
  };

  // Chunks are delivered synchronously on the caller's thread, so credit
  // accounting is moot (the consumer is always caught up by construction)
  // and backpressure_waits stays 0.
  class CallbackStreamWriter final : public StreamWriter {
   public:
    explicit CallbackStreamWriter(const chunk_cb_t* cb) : cb_(cb) {}
    bool send(const Message& m) override {
      if (cb_ == nullptr) {
        throw TransportError("loopback: streamed reply on a plain call");
      }
      if (aborted_) return false;
      if (!(*cb_)(m)) {
        aborted_ = true;
        return false;
      }
      return true;
    }

    bool aborted() const { return aborted_; }

   private:
    const chunk_cb_t* cb_;
    bool aborted_ = false;
  };

  Message invoke(NodeId src, NodeId dest, Message req,
                 const chunk_cb_t* on_chunk) {
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> g(mu_);
      auto it = nodes_.find(dest);
      if (it == nodes_.end()) {
        throw TransportError("loopback: no node " + std::to_string(dest));
      }
      slot = it->second;
      slot->active.fetch_add(1, std::memory_order_acq_rel);
    }
    struct ActiveGuard {
      Slot& slot;
      ~ActiveGuard() { slot.active.fetch_sub(1, std::memory_order_acq_rel); }
    } guard{*slot};
    CallbackStreamWriter stream(on_chunk);
    // Zero-copy delivery: the encoded payload moves through untouched, on
    // the caller's thread.
    Message reply = slot->handler(src, std::move(req), stream);
    // Same contract as TCP: an abandoned stream yields the empty kOk
    // sentinel, not the producer's final frame.
    if (stream.aborted()) return Message{MsgType::kOk, {}};
    return reply;
  }

  std::mutex mu_;
  std::map<NodeId, std::shared_ptr<Slot>> nodes_;
};

// ---------------------------------------------------------------------------
// TcpTransport (implementation in transport.cpp)
// ---------------------------------------------------------------------------

// Real TCP on a host network. bind() opens a listening socket on
// `listen_host` (default 127.0.0.1) with an ephemeral port and starts a
// server thread; the node's address is then discoverable via port_of() —
// a multi-process deployment exchanges addresses out of band and registers
// peers with add_peer(). call() uses a small per-destination pool of
// connections, so concurrent callers do not serialise on one socket.
class TcpTransport final : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void bind_stream(NodeId node, stream_handler_t handler) override;
  void unbind(NodeId node) override;
  Message call(NodeId dest, Message req) override;
  Message call_stream(NodeId dest, Message req,
                      const chunk_cb_t& on_chunk) override;

  // Address book for destinations not bound through this instance (other
  // processes / machines).
  void add_peer(NodeId node, const std::string& host, std::uint16_t port);

  // Listening port of a locally bound node (test plumbing + address
  // exchange).
  std::uint16_t port_of(NodeId node) const;

  // Close all pooled client connections and stop every bound node's
  // server. Called by the destructor.
  void shutdown();

 private:
  struct Server;  // one bound node: listen socket + poll-loop thread
  struct Peer {   // where to reach a node + pooled idle connections
    std::string host;
    std::uint16_t port = 0;
    std::vector<int> idle_fds;
  };

  int connect_to(const Peer& peer) const;
  Message do_call(NodeId dest, Message req, const chunk_cb_t* on_chunk);

  mutable std::mutex mu_;
  std::map<NodeId, std::unique_ptr<Server>> servers_;
  std::map<NodeId, Peer> peers_;
  bool down_ = false;
};

}  // namespace psi::net
