// PSI-Lib net layer: the distributed service facade.
//
// DistributedService<Index> = N ShardHosts + one Coordinator + the query
// client, over any Transport. With LoopbackTransport this is the
// single-process deployment (and the test substrate) — protocol-identical
// to a TcpTransport deployment across real sockets.
//
// Write path: build()/insert_batch()/delete_batch() serialise into the
// coordinator (one writer mutex — the same single-writer discipline as
// SpatialService), which ships per-node kCommitBatch messages and joins
// the epoch acks (node.h).
//
// Read path: every query plans against the coordinator's lock-free route
// view, fans sub-queries out to the owning nodes in parallel (TaskGroup —
// one RPC per node), and merges the replies through the same
// api::ConcurrentSink / api::ConcurrentKnnBuffer machinery the in-process
// snapshot fan-out uses: remote points stream straight from the decoder
// into the shared sink. Handoffs are invisible to callers: a host that no
// longer owns a queried shard reports the key as missing, and the client
// re-routes just that shard through the refreshed route (bounded retries;
// a shard dissolved by split/merge restarts the whole plan). The entry
// point is the redesigned query(QueryDesc, ReadOptions, Sink&) surface
// (read_options.h): ReadOptions selects read-committed vs pinned-epoch
// consistency (pin()/pin_at() hold a route whose exact per-shard content
// versions every host must answer at — snapshot-consistent multi-shard
// reads under concurrent writers) and whether list replies stream back as
// bounded wire chunks under credit-based backpressure instead of one
// materialised reply per node. The legacy range_list/knn/... names are
// thin adapters over it.
//
// Caching: the client keeps a version-keyed QueryCache exactly like the
// in-process service — coverage is the routed shard run + its content
// versions from the route view. Every kQueryResult piggybacks the version
// of each shard it answered from; a result is admitted to the cache only
// when every piggybacked version matches the plan (a mid-fan-out commit
// would otherwise cache a torn result). Commits that touch only other
// shards leave entries valid — remote readers get cross-epoch hits without
// re-contacting any node.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "psi/api/query.h"
#include "psi/api/read_options.h"
#include "psi/net/node.h"
#include "psi/net/transport.h"
#include "psi/net/wire.h"
#include "psi/parallel/task_group.h"
#include "psi/service/query_cache.h"
#include "psi/service/snapshot.h"
#include "psi/telemetry/histogram.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/registry.h"
#include "psi/telemetry/trace.h"

namespace psi::net {

// One host's answer to the kTelemetry stats RPC: its read-path and
// commit-stage histograms plus raw per-shard heat counters.
struct HostTelemetry {
  NodeId node = 0;
  std::vector<telemetry::HistogramSnapshot> reads;   // by ReadOp index
  std::vector<telemetry::HistogramSnapshot> stages;  // by Stage index
  std::vector<telemetry::HeatEntry> heat;            // keyed by shard key
};

struct DistributedStats {
  CoordinatorStats coordinator;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_cross_epoch_hits = 0;
  // Results answered but not admitted because a commit raced the fan-out
  // (piggybacked versions disagreed with the plan).
  std::uint64_t cache_torn_skips = 0;
  // Pinned-read accounting (wire v3; see read_options.h): fan-outs planned
  // against a pinned route, and reads refused because the pinned state had
  // left the retention window.
  std::uint64_t pinned_reads = 0;
  std::uint64_t epoch_retired_errors = 0;
  // Streamed-reply accounting: chunk frames received across all fan-outs,
  // and the total number of times hosts blocked on the credit window.
  std::uint64_t stream_chunks = 0;
  std::uint64_t stream_backpressure_waits = 0;
  // Wall-clock cost of the last recover_from_disk() (0 when never run).
  double recovery_ms = 0;
  // Per-host telemetry (one kTelemetry RPC each) and its cluster-wide
  // merge. Histogram merge is bucket-wise and associative, so the merged
  // snapshots are exactly what one host recording every event would hold —
  // percentiles over them are true cluster percentiles, not averages of
  // per-host percentiles. Empty when telemetry is compiled out.
  std::vector<HostTelemetry> hosts;
  std::vector<telemetry::HistogramSnapshot> read_hists;   // merged, by ReadOp
  std::vector<telemetry::HistogramSnapshot> stage_hists;  // merged, by Stage
  std::vector<telemetry::LatencySummary> read_latency;    // summaries of ^
  std::vector<telemetry::LatencySummary> stage_latency;
  std::vector<telemetry::HeatEntry> heat;  // summed across hosts, by key
};

template <typename Index,
          typename Codec = sfc::MortonCodec<typename Index::point_t::coord_t,
                                            Index::point_t::kDim>>
class DistributedService {
 public:
  using point_t = typename Index::point_t;
  using coord_t = typename point_t::coord_t;
  static constexpr int kDim = point_t::kDim;
  using box_t = Box<coord_t, kDim>;
  using host_t = ShardHost<Index>;
  using coordinator_t = Coordinator<coord_t, kDim, Codec>;
  using route_t = typename coordinator_t::route_t;
  using factory_t = typename host_t::factory_t;

  // Creates and binds `num_nodes` hosts (NodeIds 1..num_nodes) on the
  // transport, then the coordinator over them. The factory is shared by
  // all hosts (it receives global factory ids, so heterogeneous per-shard
  // backends keep working across nodes).
  //
  // Durability: cfg.durability.dir is the cluster base directory — each
  // host logs under `<dir>/node-<id>`, the coordinator's commit-cut
  // markers under `<dir>/coordinator`. A crashed deployment is revived by
  // constructing a fresh facade over the same base dir and calling
  // recover_from_disk().
  DistributedService(Transport& transport, std::size_t num_nodes,
                     DistributedConfig cfg = {},
                     factory_t factory = [](std::size_t) { return Index(); })
      : transport_(transport),
        cache_(cfg.cache_entries, cfg.cache_max_entry_bytes),
        cfg_(cfg),
        factory_(factory) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < std::max<std::size_t>(1, num_nodes); ++i) {
      const NodeId id = static_cast<NodeId>(i + 1);
      psi::durability::DurabilityConfig dur = cfg.durability;
      if (dur.armed()) dur.dir = node_dir(id);
      hosts_.push_back(std::make_unique<host_t>(
          id, transport_, factory, cfg.pipelined_commits, std::move(dur),
          cfg.retained_epochs));
      hosts_.back()->set_arena_checkpoints(cfg.arena_handoff);
      ids.push_back(id);
    }
    coordinator_ =
        std::make_unique<coordinator_t>(transport_, std::move(ids), cfg);
  }

  // Hosts unbind from the transport in their destructors (after the
  // coordinator, which stops issuing RPCs first).
  ~DistributedService() { coordinator_.reset(); }

  DistributedService(const DistributedService&) = delete;
  DistributedService& operator=(const DistributedService&) = delete;

  // -------------------------------------------------------------------
  // Writes (any thread; serialised internally)
  // -------------------------------------------------------------------

  void build(const std::vector<point_t>& pts) {
    std::lock_guard<std::mutex> g(write_mu_);
    coordinator_->load(pts);
    // Bulk loads bypass the commit path and hence every WAL — the loaded
    // state is only durable through a full checkpoint (same discipline as
    // the in-process service).
    if (cfg_.durability.armed()) checkpoint_all_locked();
  }

  std::uint64_t insert_batch(const std::vector<point_t>& pts) {
    return apply_updates(pts, /*is_delete=*/false);
  }

  std::uint64_t delete_batch(const std::vector<point_t>& pts) {
    return apply_updates(pts, /*is_delete=*/true);
  }

  // Mixed FIFO update group (pair = {is_delete, point}).
  std::uint64_t commit(const std::vector<std::pair<bool, point_t>>& updates) {
    std::lock_guard<std::mutex> g(write_mu_);
    coordinator_->commit(updates);
    checkpoint_if_topology_changed();
    return coordinator_->epoch();
  }

  // Explicitly hand shard `i` (route position) to `node` — the manual
  // rebalance hook; the automatic policy is cfg.balance_nodes.
  void migrate(std::size_t shard, NodeId node) {
    std::lock_guard<std::mutex> g(write_mu_);
    coordinator_->migrate(shard, node);
    checkpoint_if_topology_changed();
  }

  // -------------------------------------------------------------------
  // Durability (no-ops unless cfg.durability is armed)
  // -------------------------------------------------------------------

  // Snapshot every live host and truncate its WAL, then reset the
  // coordinator's marker log. Ordering matters: host checkpoints first —
  // if a crash interrupts the sequence, leftover markers merely point at
  // epochs the new manifests already absorb (records below a checkpoint
  // are skipped on replay), whereas resetting markers first could strand
  // acked-but-not-yet-checkpointed WAL records above a vanished cut.
  void checkpoint_all() {
    std::lock_guard<std::mutex> g(write_mu_);
    checkpoint_all_locked();
  }

  // Rebuild the cluster's state from the base directory: per-node
  // checkpoint + WAL tail, cut uniformly at the coordinator's last commit
  // marker, deduped by shard key (a migrated shard may appear in two
  // nodes' checkpoints — the higher content version wins).
  //
  // Clean restart — every WAL tail empty and the recovered shards exactly
  // matching the coordinator's TOPOLOGY record — re-installs the
  // checkpointed topology verbatim: shard keys, versions, code bounds, and
  // placement all survive, and arena-format snapshots adopt in O(bytes)
  // with no decode or rebuild anywhere — and the on-disk checkpoint is
  // left as-is, since it already describes the restored state exactly.
  // Otherwise (WAL tail, crash mid-checkpoint, pre-topology directory)
  // the recovered multiset is bulk-loaded through the coordinator as a
  // fresh topology and immediately re-checkpointed. Call on a freshly
  // constructed facade.
  void recover_from_disk() {
    std::lock_guard<std::mutex> g(write_mu_);
    if (!cfg_.durability.armed()) return;
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t cut =
        psi::durability::last_marker(cfg_.durability.dir + "/coordinator");
    const auto topo =
        psi::durability::read_topology(cfg_.durability.dir + "/coordinator");
    std::map<std::uint64_t, psi::durability::RecoveredShard<coord_t, kDim>>
        best;
    const auto decoder = arena_decoder();
    bool at_checkpoint = true;  // recovered state == checkpointed state?
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      const NodeId id = static_cast<NodeId>(i + 1);
      auto rec =
          psi::durability::recover<coord_t, kDim>(node_dir(id), cut, decoder);
      at_checkpoint = at_checkpoint && rec.records_applied == 0;
      if (!rec.found) continue;
      for (auto& s : rec.shards) {
        const auto it = best.find(s.key);
        if (it == best.end() || s.version > it->second.version) {
          best[s.key] = std::move(s);
        }
      }
    }
    if (topo && at_checkpoint &&
        coordinator_->restore_topology(*topo, best, decoder)) {
      // Verbatim restore: the on-disk checkpoint already describes exactly
      // the live state (zero WAL records applied, identical shard versions
      // and placement), so re-writing it would be a byte-for-byte copy.
      // Skip it — each host's WAL resumes above the old manifest
      // watermark, so records appended after this restart stay visible to
      // the next recovery against the existing checkpoint.
      const auto s = coordinator_->stats();
      last_topology_events_ = s.splits + s.merges + s.migrations;
    } else {
      std::vector<point_t> pts;
      for (auto& [key, shard] : best) {
        // The bulk load below repartitions across a fresh topology, so any
        // shard still held as an arena image decodes here — only after
        // dedup, so a superseded copy never pays the decode.
        if (!shard.image.empty()) {
          shard.pts = decoder(shard.factory_id, shard.image);
          shard.image.clear();
        }
        pts.insert(pts.end(), shard.pts.begin(), shard.pts.end());
      }
      coordinator_->load(pts);
      checkpoint_all_locked();
    }
    recovery_ms_ = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  }

  // Crash-test support: destroy host `idx` (0-based) outright — its
  // transport binding disappears mid-deployment, exactly as a killed
  // process would. Queries and commits routed at it will fail until
  // recover_host() re-homes its shards.
  void crash_host(std::size_t idx) {
    std::lock_guard<std::mutex> g(write_mu_);
    hosts_.at(idx).reset();
  }

  // Re-install the dead host's shards on the survivors from its
  // durability directory (checkpoint + WAL tail below the marker cut).
  void recover_host(std::size_t idx) {
    std::lock_guard<std::mutex> g(write_mu_);
    const NodeId id = static_cast<NodeId>(idx + 1);
    coordinator_->recover_host(id, node_dir(id), arena_decoder());
  }

  // -------------------------------------------------------------------
  // Queries — the redesigned read surface (any thread, lock-free planning)
  // -------------------------------------------------------------------

  using desc_t = api::QueryDesc<coord_t, kDim>;

  // A pinned global read point: the route published at pin time, held by
  // the caller. Queries through it fan out the exact per-shard content
  // versions that route names, so they observe the committed state at that
  // epoch on every shard — snapshot-consistent across the whole cluster,
  // repeatable, and stable under concurrent writers — for as long as every
  // host still retains those versions (cfg.retained_epochs deep). Past the
  // horizon, queries raise api::EpochRetired; re-pin and retry.
  class PinnedView {
   public:
    std::uint64_t epoch() const { return route_->epoch; }

   private:
    friend DistributedService;
    explicit PinnedView(std::shared_ptr<const route_t> r)
        : route_(std::move(r)) {}
    std::shared_ptr<const route_t> route_;
  };

  // Pin the current epoch.
  PinnedView pin() const { return PinnedView(coordinator_->route()); }

  // Pin a specific past epoch ("query as of E"). Throws api::EpochRetired
  // once E's route has left the coordinator's retention window.
  PinnedView pin_at(std::uint64_t epoch) const {
    auto rt = coordinator_->route_at(epoch);
    if (rt == nullptr) {
      note_retired();
      throw api::EpochRetired(epoch);
    }
    return PinnedView(std::move(rt));
  }

  // THE read entry point: one QueryDesc (what), one ReadOptions (how), one
  // sink (where the matches go). Returns the number of points delivered
  // for list kinds, the count for count kinds. An api::ConcurrentSink
  // receives points directly from the decoder threads as node replies (or
  // stream chunks) arrive; any other sink gets the materialised result
  // sequentially after the join. With opts.stream, list results cross the
  // wire as bounded kQueryChunk frames under credit-based backpressure —
  // no per-node reply buffer ever exceeds one chunk.
  template <typename Sink>
  std::size_t query(const desc_t& q, const api::ReadOptions& opts,
                    Sink&& sink) const {
    FanPlan plan;
    if (opts.is_pinned()) plan.pinned = pin_at(opts.pinned_epoch).route_;
    plan.stream =
        opts.stream && q.is_list() && opts.cache != api::CachePolicy::kUse;
    return query_on(q, opts, plan, sink);
  }

  // Query through an explicit pin — cheaper and stabler than re-resolving
  // opts.pinned_epoch per read: the held route still plans correctly after
  // the coordinator's ring moved on, as long as hosts retain the data.
  template <typename Sink>
  std::size_t query(const desc_t& q, const PinnedView& pin, Sink&& sink,
                    api::ReadOptions opts = {}) const {
    FanPlan plan;
    plan.pinned = pin.route_;
    plan.stream =
        opts.stream && q.is_list() && opts.cache != api::CachePolicy::kUse;
    return query_on(q, opts, plan, sink);
  }

  // Count-only convenience: no sink to feed.
  std::size_t query(const desc_t& q, const api::ReadOptions& opts = {}) const {
    auto ignore = [](const point_t&) {};
    return query(q, opts, ignore);
  }

  // -------------------------------------------------------------------
  // Legacy entry points — thin adapters over query() (kept for source
  // compatibility; see read_options.h for the redesign rationale)
  // -------------------------------------------------------------------

  std::vector<point_t> range_list(const box_t& query_box) const {
    std::vector<point_t> out;
    auto into = [&](const point_t& p) { out.push_back(p); };
    query(desc_t::range_list(query_box), api::ReadOptions{}, into);
    return out;
  }

  std::size_t range_count(const box_t& query_box) const {
    return query(desc_t::range_count(query_box));
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::vector<point_t> out;
    auto into = [&](const point_t& p) { out.push_back(p); };
    query(desc_t::ball_list(q, radius), api::ReadOptions{}, into);
    return out;
  }

  std::size_t ball_count(const point_t& q, double radius) const {
    return query(desc_t::ball_count(q, radius));
  }

  // k nearest neighbours across every node, in increasing distance order.
  // Each node returns its local top-k (over the shards it owns); the exact
  // global top-k is the ConcurrentKnnBuffer merge at the join.
  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::vector<point_t> out;
    auto into = [&](const point_t& p) { out.push_back(p); };
    query(desc_t::knn(q, k), api::ReadOptions{}, into);
    return out;
  }

  // Cached adapters (version-keyed client cache; see the header comment).
  // Equivalent to query() with ReadOptions{}.cached(), but hand back the
  // cache's shared vector so hits stay zero-copy.
  std::shared_ptr<const std::vector<point_t>> range_list_cached(
      const box_t& query_box) const {
    return cached_list_for(desc_t::range_list(query_box), nullptr);
  }

  std::size_t range_count_cached(const box_t& query_box) const {
    return cached_count_for(desc_t::range_count(query_box), nullptr);
  }

  std::shared_ptr<const std::vector<point_t>> ball_list_cached(
      const point_t& q, double radius) const {
    return cached_list_for(desc_t::ball_list(q, radius), nullptr);
  }

  // -------------------------------------------------------------------
  // Observers
  // -------------------------------------------------------------------

  std::uint64_t epoch() const { return coordinator_->epoch(); }
  std::size_t num_shards() const { return coordinator_->route()->keys.size(); }
  std::size_t num_nodes() const { return hosts_.size(); }

  // Lock-free: the acked population total published with the route (never
  // blocks behind an in-flight commit or bulk load).
  std::size_t size() const { return coordinator_->route()->total_points; }

  DistributedStats stats() const {
    std::lock_guard<std::mutex> g(write_mu_);
    DistributedStats s;
    s.coordinator = coordinator_->stats();
    s.cache_hits = cache_.hits();
    s.cache_misses = cache_.misses();
    s.cache_cross_epoch_hits = cache_.cross_epoch_hits();
    s.cache_torn_skips = torn_skips_.load(std::memory_order_relaxed);
    s.pinned_reads = pinned_reads_.load(std::memory_order_relaxed);
    s.epoch_retired_errors =
        epoch_retired_errors_.load(std::memory_order_relaxed);
    s.stream_chunks = stream_chunks_.load(std::memory_order_relaxed);
    s.stream_backpressure_waits =
        stream_backpressure_waits_.load(std::memory_order_relaxed);
    s.recovery_ms = recovery_ms_;
    if constexpr (telemetry::kEnabled) collect_telemetry(s);
    return s;
  }

  // Test support: the full multiset, fetched shard by shard over the
  // transport (serialised with writers — a consistent cut).
  std::vector<point_t> flatten() const {
    std::lock_guard<std::mutex> g(write_mu_);
    return coordinator_->flatten();
  }

 private:
  using cache_key_t = service::QueryKey<coord_t, kDim>;

  std::string node_dir(NodeId id) const {
    return cfg_.durability.dir + "/node-" + std::to_string(id);
  }

  void checkpoint_all_locked() {
    for (auto& h : hosts_) {
      if (h) h->checkpoint();
    }
    coordinator_->truncate_marker_log();
    // Topology record last: it must never name manifests that were not
    // durably written yet. A crash in between leaves a topology whose
    // shard versions disagree with the (newer) manifests, which recovery
    // detects and answers with the bulk-load path.
    coordinator_->save_topology();
    const auto s = coordinator_->stats();
    last_topology_events_ = s.splits + s.merges + s.migrations;
  }

  // Shard splits, merges, and migrations redistribute data through install
  // RPCs, which are NOT WAL events — a topology change is only durable
  // once checkpointed. Checkpointing after every commit that rebalanced
  // shrinks the undurable window to the rebalance itself (documented
  // caveat; topology changes are rare, so the cost amortises to nothing).
  void checkpoint_if_topology_changed() {
    if (!cfg_.durability.armed()) return;
    const auto s = coordinator_->stats();
    const std::uint64_t topo = s.splits + s.merges + s.migrations;
    if (topo == last_topology_events_) return;
    checkpoint_all_locked();  // refreshes last_topology_events_
  }

  struct Fanned {
    std::uint64_t count = 0;            // count kinds
    service::CacheCoverage cov;          // coverage of the plan that ran
    bool clean = true;                   // piggyback matched the plan
  };

  // How a fan-out reads: against the live route (pinned == nullptr,
  // read-committed) or a fixed pinned route whose per-shard content
  // versions every sub-query must be answered at; and whether list
  // payloads flow back as bounded stream chunks.
  struct FanPlan {
    std::shared_ptr<const route_t> pinned;
    bool stream = false;
  };

  std::uint64_t apply_updates(const std::vector<point_t>& pts,
                              bool is_delete) {
    std::vector<std::pair<bool, point_t>> updates;
    updates.reserve(pts.size());
    for (const auto& p : pts) updates.emplace_back(is_delete, p);
    return commit(updates);
  }

  // One kTelemetry RPC per host (serialised under write_mu_ with the rest
  // of stats()), decoded into per-host snapshots and folded into the
  // cluster-wide merge.
  void collect_telemetry(DistributedStats& s) const {
    PSI_TRACE_SPAN("rpc.telemetry");
    s.read_hists.assign(telemetry::kNumReadOps, {});
    s.stage_hists.assign(telemetry::kNumStages, {});
    std::map<std::uint64_t, telemetry::HeatEntry> merged_heat;
    for (NodeId node : coordinator_->nodes()) {
      WireWriter w;
      Message reply = expect_ok(
          transport_.call(node, std::move(w).finish(MsgType::kTelemetry)),
          "telemetry");
      WireReader r(reply);
      HostTelemetry host;
      host.node = node;
      const std::uint32_t n_reads = r.get_u32();
      for (std::uint32_t i = 0; i < n_reads; ++i) {
        telemetry::HistogramSnapshot snap = r.get_histogram();
        if (i < s.read_hists.size()) s.read_hists[i].merge(snap);
        host.reads.push_back(std::move(snap));
      }
      const std::uint32_t n_stages = r.get_u32();
      for (std::uint32_t i = 0; i < n_stages; ++i) {
        telemetry::HistogramSnapshot snap = r.get_histogram();
        if (i < s.stage_hists.size()) s.stage_hists[i].merge(snap);
        host.stages.push_back(std::move(snap));
      }
      const std::uint32_t n_heat = r.get_u32();
      for (std::uint32_t i = 0; i < n_heat; ++i) {
        telemetry::HeatEntry e;
        e.key = r.get_u64();
        e.reads = r.get_u64();
        e.writes = r.get_u64();
        auto& m = merged_heat[e.key];
        m.key = e.key;
        m.reads += e.reads;
        m.writes += e.writes;
        host.heat.push_back(e);
      }
      s.hosts.push_back(std::move(host));
    }
    for (const auto& h : s.read_hists) {
      s.read_latency.push_back(telemetry::summarize(h));
    }
    for (const auto& h : s.stage_hists) {
      s.stage_latency.push_back(telemetry::summarize(h));
    }
    for (auto& [key, e] : merged_heat) s.heat.push_back(e);
  }

  void admit_list(const cache_key_t& key, const Fanned& f,
                  const std::shared_ptr<const std::vector<point_t>>& pts) const {
    if (f.clean) {
      cache_.put_list(key, f.cov, pts);
    } else {
      ++torn_skips_;
    }
  }

  void note_retired() const {
    epoch_retired_errors_.fetch_add(1, std::memory_order_relaxed);
    retired_ctr_->inc();
  }

  // ---- QueryDesc plumbing (shared by every read entry point) ----

  static QueryKind wire_kind(typename desc_t::Kind k) {
    switch (k) {
      case desc_t::Kind::kRangeList: return QueryKind::kRangeList;
      case desc_t::Kind::kRangeCount: return QueryKind::kRangeCount;
      case desc_t::Kind::kBallList: return QueryKind::kBallList;
      case desc_t::Kind::kBallCount: return QueryKind::kBallCount;
      case desc_t::Kind::kKnn: return QueryKind::kKnn;
    }
    return QueryKind::kRangeCount;
  }

  static void put_query_params(WireWriter& w, const desc_t& q) {
    switch (q.kind) {
      case desc_t::Kind::kRangeList:
      case desc_t::Kind::kRangeCount:
        w.put_box(q.box);
        break;
      case desc_t::Kind::kBallList:
      case desc_t::Kind::kBallCount:
        w.put_point(q.center);
        w.put_f64(q.radius);
        break;
      case desc_t::Kind::kKnn:
        w.put_point(q.center);
        w.put_u64(q.k);
        break;
    }
  }

  static cache_key_t cache_key_of(const desc_t& q) {
    switch (q.kind) {
      case desc_t::Kind::kRangeList:
      case desc_t::Kind::kRangeCount:
        return cache_key_t::range(q.box);
      case desc_t::Kind::kBallList:
      case desc_t::Kind::kBallCount:
        return cache_key_t::ball(q.center, q.radius);
      case desc_t::Kind::kKnn:
        return cache_key_t::knn(q.center, q.k);
    }
    return cache_key_t::range(q.box);
  }

  // The routed shard run of a query on a given route. kNN prunes by
  // distance, not routing: every shard is in scope — and a shardless route
  // yields an *inverted* run (the shape make_coverage treats as empty),
  // never {0, 0}, which would slice one element out of an empty version
  // vector.
  static std::pair<std::size_t, std::size_t> run_for(const route_t& rt,
                                                     const desc_t& q) {
    switch (q.kind) {
      case desc_t::Kind::kRangeList:
      case desc_t::Kind::kRangeCount:
        return rt.map.shard_range_for_box(q.box);
      case desc_t::Kind::kBallList:
      case desc_t::Kind::kBallCount:
        return rt.map.shard_range_for_box(
            service::ball_bounding_box(q.center, q.radius));
      case desc_t::Kind::kKnn:
        break;
    }
    return rt.keys.empty()
               ? std::pair<std::size_t, std::size_t>{1, 0}
               : std::pair<std::size_t, std::size_t>{0, rt.keys.size() - 1};
  }

  // The uncached read core behind query(): dispatch one QueryDesc through
  // fan_out with the right merge machinery per kind.
  template <typename Sink>
  std::size_t query_on(const desc_t& q, const api::ReadOptions& opts,
                       const FanPlan& plan, Sink& sink) const {
    const auto params = [&](WireWriter& w) { put_query_params(w, q); };
    const auto runof = [&](const route_t& rt) { return run_for(rt, q); };
    if (opts.cache == api::CachePolicy::kUse) {
      if (!q.is_list()) return cached_count_for(q, plan.pinned);
      const auto pts = cached_list_for(q, plan.pinned);
      std::size_t n = 0;
      for (const point_t& p : *pts) {
        ++n;
        if (!api::sink_accept(sink, p)) break;
      }
      return n;
    }
    if (!q.is_list()) {
      const Fanned f = fan_out(wire_kind(q.kind), params, runof, [] {},
                               [](const point_t&) {}, /*for_cache=*/false,
                               plan);
      return static_cast<std::size_t>(f.count);
    }
    if (q.kind == desc_t::Kind::kKnn) {
      // Exact global top-k: per-node top-k lists merge through the
      // concurrent buffer, then drain into the caller's sink in distance
      // order.
      std::unique_ptr<api::ConcurrentKnnBuffer<coord_t, kDim>> buf;
      fan_out(
          QueryKind::kKnn, params, runof,
          [&] {
            buf = std::make_unique<api::ConcurrentKnnBuffer<coord_t, kDim>>(
                q.k);
          },
          [&](const point_t& p) {
            buf->offer(squared_distance(p, q.center), p);
          },
          /*for_cache=*/false, plan);
      std::size_t n = 0;
      for (const auto& e : buf->merged_sorted()) {
        ++n;
        if (!api::sink_accept(sink, e.point)) break;
      }
      return n;
    }
    // Range / ball list.
    if constexpr (api::is_concurrent_sink_v<std::remove_cvref_t<Sink>>) {
      // True streaming: decoder threads deliver straight into the caller's
      // sink. A plan restart (shard keys dissolved mid-query by a racing
      // split/merge/load) cannot un-deliver, so it surfaces as an error
      // once anything reached the sink — re-issue the read.
      const std::size_t before = sink.count();
      fan_out(
          wire_kind(q.kind), params, runof,
          [&] {
            if (sink.count() != before) {
              throw TransportError(
                  "query restarted after streaming into the caller's sink "
                  "began (topology changed mid-query); re-issue the read");
            }
          },
          [&](const point_t& p) { sink(p); }, /*for_cache=*/false, plan);
      return sink.count() - before;
    } else {
      // Plain sinks are not thread-safe: accumulate through an internal
      // concurrent sink (restart-transparent — it is simply rebuilt), then
      // deliver sequentially.
      std::unique_ptr<api::ConcurrentSink<coord_t, kDim>> acc;
      fan_out(
          wire_kind(q.kind), params, runof,
          [&] {
            acc = std::make_unique<api::ConcurrentSink<coord_t, kDim>>();
          },
          [&](const point_t& p) { (*acc)(p); }, /*for_cache=*/false, plan);
      std::size_t n = 0;
      for (const point_t& p : acc->take()) {
        ++n;
        if (!api::sink_accept(sink, p)) break;
      }
      return n;
    }
  }

  // Cached list read: version-keyed lookup against the plan's route (live
  // or pinned), materialising fan-out on miss, admission only when the
  // piggybacked versions matched the plan.
  std::shared_ptr<const std::vector<point_t>> cached_list_for(
      const desc_t& q, const std::shared_ptr<const route_t>& pinned) const {
    const auto key = cache_key_of(q);
    const auto params = [&](WireWriter& w) { put_query_params(w, q); };
    const auto runof = [&](const route_t& rt) { return run_for(rt, q); };
    const auto route = pinned ? pinned : coordinator_->route();
    if (auto hit = cache_.find_list(
            key, service::make_coverage(route->epoch, route->stamp,
                                        runof(*route), route->versions))) {
      return hit;
    }
    FanPlan plan;
    plan.pinned = pinned;
    Fanned f;
    std::vector<point_t> pts;
    if (q.kind == desc_t::Kind::kKnn) {
      std::unique_ptr<api::ConcurrentKnnBuffer<coord_t, kDim>> buf;
      f = fan_out(
          QueryKind::kKnn, params, runof,
          [&] {
            buf = std::make_unique<api::ConcurrentKnnBuffer<coord_t, kDim>>(
                q.k);
          },
          [&](const point_t& p) {
            buf->offer(squared_distance(p, q.center), p);
          },
          /*for_cache=*/true, plan);
      for (const auto& e : buf->merged_sorted()) pts.push_back(e.point);
    } else {
      std::unique_ptr<api::ConcurrentSink<coord_t, kDim>> sink;
      f = fan_out(
          wire_kind(q.kind), params, runof,
          [&] {
            sink = std::make_unique<api::ConcurrentSink<coord_t, kDim>>();
          },
          [&](const point_t& p) { (*sink)(p); }, /*for_cache=*/true, plan);
      pts = sink->take();
    }
    auto out = std::make_shared<const std::vector<point_t>>(std::move(pts));
    admit_list(key, f, out);
    return out;
  }

  std::size_t cached_count_for(
      const desc_t& q, const std::shared_ptr<const route_t>& pinned) const {
    const auto key = cache_key_of(q);
    const auto params = [&](WireWriter& w) { put_query_params(w, q); };
    const auto runof = [&](const route_t& rt) { return run_for(rt, q); };
    const auto route = pinned ? pinned : coordinator_->route();
    if (auto hit = cache_.find_count(
            key, service::make_coverage(route->epoch, route->stamp,
                                        runof(*route), route->versions))) {
      return *hit;
    }
    FanPlan plan;
    plan.pinned = pinned;
    const Fanned f =
        fan_out(wire_kind(q.kind), params, runof, [] {},
                [](const point_t&) {}, /*for_cache=*/true, plan);
    if (f.clean) {
      cache_.put_count(key, f.cov, static_cast<std::size_t>(f.count));
    } else {
      ++torn_skips_;
    }
    return static_cast<std::size_t>(f.count);
  }

  // The fan-out core. Plans against the current route (or the plan's
  // pinned route), issues one kQuery per owning node in parallel, streams
  // decoded points into `emit` (thread-safe via the caller's concurrent
  // sink), and accumulates count payloads. Shards reported missing
  // (handoff raced the plan) re-route through the refreshed route; a shard
  // key that vanished entirely (split/merge/load) restarts the whole plan
  // with `reset` — except under a pin, where the fixed plan can never be
  // satisfied again and the read fails as api::EpochRetired, as it does
  // when any host reports a pinned version as retired.
  //
  // `for_cache` turns on the admission bookkeeping — coverage slicing and
  // piggyback-vs-plan validation. The uncached entry points skip it: they
  // discard Fanned.cov/clean, so sorting a per-shard version index per
  // query would be pure overhead on the hot path.
  Fanned fan_out(
      QueryKind kind, const std::function<void(WireWriter&)>& put_params,
      const std::function<std::pair<std::size_t, std::size_t>(const route_t&)>&
          run_of,
      const std::function<void()>& reset,
      const std::function<void(const point_t&)>& emit,
      bool for_cache = false, const FanPlan& plan = {}) const {
    PSI_TRACE_SPAN("client.fan_out");
    const bool pinned = plan.pinned != nullptr;
    if (pinned) {
      pinned_reads_.fetch_add(1, std::memory_order_relaxed);
      pinned_ctr_->inc();
    }
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto route = pinned ? plan.pinned : coordinator_->route();
      const auto run = run_of(*route);
      Fanned out;
      // Empty plan (degenerate query run / shardless route): the run is
      // already inverted here, so make_coverage keeps the version slice
      // empty — and using the RAW run (not a normalised one) means the
      // stored coverage equals what plan_coverage computes on lookup, so
      // repeat degenerate queries hit instead of churning the ring.
      if (route->keys.empty() || run.first > run.second) {
        if (for_cache) {
          out.cov = service::make_coverage(route->epoch, route->stamp, run,
                                           route->versions);
        }
        reset();
        return out;
      }
      if (for_cache) {
        out.cov = service::make_coverage(route->epoch, route->stamp, run,
                                         route->versions);
      }
      reset();

      // The work list: (key, destination node), re-filled by re-routes.
      std::vector<std::pair<std::uint64_t, NodeId>> work;
      // Sorted (key -> planned version) index: reply validation for cache
      // admission, and the per-key expected versions a pinned request
      // carries on the wire. A kNN plan spans every shard, so per-key
      // linear scans of the run would cost O(shards^2) per query.
      std::vector<std::pair<std::uint64_t, std::uint64_t>> plan_versions;
      for (std::size_t i = run.first; i <= run.second; ++i) {
        work.emplace_back(route->keys[i], route->owners[i]);
        if (for_cache || pinned) {
          plan_versions.emplace_back(route->keys[i], route->versions[i]);
        }
      }
      std::sort(plan_versions.begin(), plan_versions.end());
      const auto version_of = [&](std::uint64_t key) -> std::uint64_t {
        const auto it = std::lower_bound(
            plan_versions.begin(), plan_versions.end(),
            std::pair<std::uint64_t, std::uint64_t>{key, 0});
        return (it != plan_versions.end() && it->first == key) ? it->second
                                                               : 0;
      };

      std::atomic<std::uint64_t> count{0};
      std::atomic<bool> clean{true};
      std::atomic<bool> any_retired{false};
      std::mutex miss_mu;
      std::vector<std::uint64_t> missing;
      bool restart = false;

      for (int round = 0; !work.empty() && !restart; ++round) {
        if (round >= 8) {
          throw TransportError("query could not settle: shards kept moving");
        }
        // Group this round's shards by destination node.
        struct Sub {
          NodeId node;
          std::vector<std::uint64_t> keys;
        };
        std::vector<Sub> subs;
        for (const auto& [key, node] : work) {
          auto it = std::find_if(subs.begin(), subs.end(), [&](const Sub& s) {
            return s.node == node;
          });
          if (it == subs.end()) {
            subs.push_back(Sub{node, {key}});
          } else {
            it->keys.push_back(key);
          }
        }
        work.clear();
        missing.clear();

        TaskGroup tasks;
        for (const Sub& sub : subs) {
          tasks.spawn([&, sub] {
            PSI_TRACE_SPAN("rpc.query");
            WireWriter w;
            w.put_u8(static_cast<std::uint8_t>(kind));
            std::uint8_t flags = 0;
            if (pinned) flags |= kQueryFlagPinned;
            if (plan.stream) flags |= kQueryFlagStream;
            w.put_u8(flags);
            w.put_u32(kDefaultStreamChunkPoints);
            w.put_u32(kDefaultStreamCredit);
            put_params(w);
            w.put_u32(static_cast<std::uint32_t>(sub.keys.size()));
            for (std::uint64_t key : sub.keys) {
              w.put_u64(key);
              w.put_u64(pinned ? version_of(key) : 0);
            }
            Message req = std::move(w).finish(MsgType::kQuery);
            Message reply;
            if (plan.stream) {
              // Chunks decode straight into the sink as they arrive; each
              // consumed chunk grants the host one more of credit (the
              // transport sends the grant).
              std::uint64_t local_chunks = 0;
              reply = transport_.call_stream(
                  sub.node, std::move(req), [&](Message chunk) {
                    WireReader cr(chunk);
                    const std::vector<point_t> pts =
                        cr.template get_points<coord_t, kDim>();
                    for (const point_t& p : pts) emit(p);
                    ++local_chunks;
                    return true;
                  });
              stream_chunks_.fetch_add(local_chunks,
                                       std::memory_order_relaxed);
              chunks_ctr_->inc(local_chunks);
            } else {
              reply = transport_.call(sub.node, std::move(req));
            }
            reply = expect_ok(std::move(reply), "query");
            WireReader r(reply);
            const std::uint32_t n_present = r.get_u32();
            for (std::uint32_t j = 0; j < n_present; ++j) {
              const std::uint64_t key = r.get_u64();
              const std::uint64_t version = r.get_u64();
              if (!for_cache) continue;  // piggyback read, not validated
              // Compare against the plan: any drift means a commit or
              // reload landed mid-fan-out — the result is still a valid
              // read-committed answer, but must not be cached. (A pinned
              // reply can never drift: hosts answer at the requested
              // version or report the key retired.)
              const auto it = std::lower_bound(
                  plan_versions.begin(), plan_versions.end(),
                  std::pair<std::uint64_t, std::uint64_t>{key, 0});
              if (it == plan_versions.end() || it->first != key ||
                  it->second != version) {
                clean.store(false, std::memory_order_relaxed);
              }
            }
            const std::uint32_t n_missing = r.get_u32();
            if (n_missing != 0) {
              std::lock_guard<std::mutex> g(miss_mu);
              for (std::uint32_t j = 0; j < n_missing; ++j) {
                missing.push_back(r.get_u64());
              }
            }
            const std::uint32_t n_retired = r.get_u32();
            if (n_retired != 0) {
              any_retired.store(true, std::memory_order_relaxed);
              for (std::uint32_t j = 0; j < n_retired; ++j) {
                (void)r.get_u64();  // keys are diagnostic only
              }
            }
            if (reply.type == MsgType::kQueryDone) {
              // Streamed reply: the points already flowed through
              // on_chunk; the final frame carries the summary.
              (void)r.get_u64();  // total points
              (void)r.get_u64();  // chunk count (counted client-side)
              const std::uint64_t waits = r.get_u64();
              stream_backpressure_waits_.fetch_add(
                  waits, std::memory_order_relaxed);
              waits_ctr_->inc(waits);
              return;
            }
            switch (kind) {
              case QueryKind::kRangeList:
              case QueryKind::kBallList:
              case QueryKind::kKnn: {
                const std::vector<point_t> pts =
                    r.template get_points<coord_t, kDim>();
                for (const point_t& p : pts) emit(p);
                break;
              }
              case QueryKind::kRangeCount:
              case QueryKind::kBallCount:
                count.fetch_add(r.get_u64(), std::memory_order_relaxed);
                break;
            }
          });
        }
        tasks.wait();
        // Any pinned version past a host's retention horizon fails the
        // whole read: the pinned state is no longer materialisable.
        if (any_retired.load(std::memory_order_relaxed)) {
          note_retired();
          throw api::EpochRetired(route->epoch);
        }

        // Re-route every missing shard through the freshest route; a key
        // that no longer exists anywhere means the topology changed under
        // us — replan from scratch.
        if (!missing.empty()) {
          const auto fresh = coordinator_->route();
          for (std::uint64_t key : missing) {
            std::size_t idx = fresh->keys.size();
            for (std::size_t i = 0; i < fresh->keys.size(); ++i) {
              if (fresh->keys[i] == key) {
                idx = i;
                break;
              }
            }
            if (idx == fresh->keys.size()) {
              restart = true;
              break;
            }
            work.emplace_back(key, fresh->owners[idx]);
            // A pinned re-route stays clean: the new owner must still
            // answer at the planned content version or report it retired.
            if (!pinned) {
              clean.store(false, std::memory_order_relaxed);  // moved
            }
          }
        }
      }
      if (restart) {
        if (pinned) {
          // The pinned route names a shard key that no longer exists
          // anywhere (dissolved by a split/merge/load): the pinned state
          // cannot be reassembled, now or on any retry.
          note_retired();
          throw api::EpochRetired(route->epoch);
        }
        continue;
      }
      out.count = count.load(std::memory_order_relaxed);
      out.clean = clean.load(std::memory_order_relaxed);
      return out;
    }
    throw TransportError("query could not settle: topology kept changing");
  }

  Transport& transport_;
  std::vector<std::unique_ptr<host_t>> hosts_;
  std::unique_ptr<coordinator_t> coordinator_;
  mutable std::mutex write_mu_;
  mutable service::QueryCache<coord_t, kDim> cache_;
  mutable std::atomic<std::uint64_t> torn_skips_{0};
  mutable std::atomic<std::uint64_t> pinned_reads_{0};
  mutable std::atomic<std::uint64_t> epoch_retired_errors_{0};
  mutable std::atomic<std::uint64_t> stream_chunks_{0};
  mutable std::atomic<std::uint64_t> stream_backpressure_waits_{0};
  telemetry::Counter* pinned_ctr_ =
      &telemetry::StatsRegistry::instance().counter("psi_pinned_reads");
  telemetry::Counter* retired_ctr_ =
      &telemetry::StatsRegistry::instance().counter("psi_epoch_retired_errors");
  telemetry::Counter* chunks_ctr_ =
      &telemetry::StatsRegistry::instance().counter("psi_stream_chunks");
  telemetry::Counter* waits_ctr_ = &telemetry::StatsRegistry::instance()
                                        .counter("psi_stream_backpressure_waits");
  DistributedConfig cfg_;
  // Kept for recovery: decoding an arena checkpoint image back to points
  // needs an index of the same backend type (adopt + flatten).
  factory_t factory_;
  double recovery_ms_ = 0;
  std::uint64_t last_topology_events_ = 0;

  psi::durability::ArenaDecoder<coord_t, kDim> arena_decoder() const {
    return [this](std::uint64_t factory_id,
                  const std::vector<std::uint8_t>& image) {
      Index idx = factory_(static_cast<std::size_t>(factory_id));
      service::adopt_index_arena(idx, image.data(), image.size());
      return idx.flatten();
    };
  }
};

}  // namespace psi::net
