// PSI-Lib net layer: the distributed service facade.
//
// DistributedService<Index> = N ShardHosts + one Coordinator + the query
// client, over any Transport. With LoopbackTransport this is the
// single-process deployment (and the test substrate) — protocol-identical
// to a TcpTransport deployment across real sockets.
//
// Write path: build()/insert_batch()/delete_batch() serialise into the
// coordinator (one writer mutex — the same single-writer discipline as
// SpatialService), which ships per-node kCommitBatch messages and joins
// the epoch acks (node.h).
//
// Read path: every query plans against the coordinator's lock-free route
// view, fans sub-queries out to the owning nodes in parallel (TaskGroup —
// one RPC per node), and merges the replies through the same
// api::ConcurrentSink / api::ConcurrentKnnBuffer machinery the in-process
// snapshot fan-out uses: remote points stream straight from the decoder
// into the shared sink. Handoffs are invisible to callers: a host that no
// longer owns a queried shard reports the key as missing, and the client
// re-routes just that shard through the refreshed route (bounded retries;
// a shard dissolved by split/merge restarts the whole plan).
//
// Caching: the client keeps a version-keyed QueryCache exactly like the
// in-process service — coverage is the routed shard run + its content
// versions from the route view. Every kQueryResult piggybacks the version
// of each shard it answered from; a result is admitted to the cache only
// when every piggybacked version matches the plan (a mid-fan-out commit
// would otherwise cache a torn result). Commits that touch only other
// shards leave entries valid — remote readers get cross-epoch hits without
// re-contacting any node.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "psi/api/query.h"
#include "psi/net/node.h"
#include "psi/net/transport.h"
#include "psi/net/wire.h"
#include "psi/parallel/task_group.h"
#include "psi/service/query_cache.h"
#include "psi/service/snapshot.h"
#include "psi/telemetry/histogram.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/trace.h"

namespace psi::net {

// One host's answer to the kTelemetry stats RPC: its read-path and
// commit-stage histograms plus raw per-shard heat counters.
struct HostTelemetry {
  NodeId node = 0;
  std::vector<telemetry::HistogramSnapshot> reads;   // by ReadOp index
  std::vector<telemetry::HistogramSnapshot> stages;  // by Stage index
  std::vector<telemetry::HeatEntry> heat;            // keyed by shard key
};

struct DistributedStats {
  CoordinatorStats coordinator;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_cross_epoch_hits = 0;
  // Results answered but not admitted because a commit raced the fan-out
  // (piggybacked versions disagreed with the plan).
  std::uint64_t cache_torn_skips = 0;
  // Wall-clock cost of the last recover_from_disk() (0 when never run).
  double recovery_ms = 0;
  // Per-host telemetry (one kTelemetry RPC each) and its cluster-wide
  // merge. Histogram merge is bucket-wise and associative, so the merged
  // snapshots are exactly what one host recording every event would hold —
  // percentiles over them are true cluster percentiles, not averages of
  // per-host percentiles. Empty when telemetry is compiled out.
  std::vector<HostTelemetry> hosts;
  std::vector<telemetry::HistogramSnapshot> read_hists;   // merged, by ReadOp
  std::vector<telemetry::HistogramSnapshot> stage_hists;  // merged, by Stage
  std::vector<telemetry::LatencySummary> read_latency;    // summaries of ^
  std::vector<telemetry::LatencySummary> stage_latency;
  std::vector<telemetry::HeatEntry> heat;  // summed across hosts, by key
};

template <typename Index,
          typename Codec = sfc::MortonCodec<typename Index::point_t::coord_t,
                                            Index::point_t::kDim>>
class DistributedService {
 public:
  using point_t = typename Index::point_t;
  using coord_t = typename point_t::coord_t;
  static constexpr int kDim = point_t::kDim;
  using box_t = Box<coord_t, kDim>;
  using host_t = ShardHost<Index>;
  using coordinator_t = Coordinator<coord_t, kDim, Codec>;
  using route_t = typename coordinator_t::route_t;
  using factory_t = typename host_t::factory_t;

  // Creates and binds `num_nodes` hosts (NodeIds 1..num_nodes) on the
  // transport, then the coordinator over them. The factory is shared by
  // all hosts (it receives global factory ids, so heterogeneous per-shard
  // backends keep working across nodes).
  //
  // Durability: cfg.durability.dir is the cluster base directory — each
  // host logs under `<dir>/node-<id>`, the coordinator's commit-cut
  // markers under `<dir>/coordinator`. A crashed deployment is revived by
  // constructing a fresh facade over the same base dir and calling
  // recover_from_disk().
  DistributedService(Transport& transport, std::size_t num_nodes,
                     DistributedConfig cfg = {},
                     factory_t factory = [](std::size_t) { return Index(); })
      : transport_(transport),
        cache_(cfg.cache_entries, cfg.cache_max_entry_bytes),
        cfg_(cfg) {
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < std::max<std::size_t>(1, num_nodes); ++i) {
      const NodeId id = static_cast<NodeId>(i + 1);
      psi::durability::DurabilityConfig dur = cfg.durability;
      if (dur.armed()) dur.dir = node_dir(id);
      hosts_.push_back(std::make_unique<host_t>(
          id, transport_, factory, cfg.pipelined_commits, std::move(dur)));
      ids.push_back(id);
    }
    coordinator_ =
        std::make_unique<coordinator_t>(transport_, std::move(ids), cfg);
  }

  // Hosts unbind from the transport in their destructors (after the
  // coordinator, which stops issuing RPCs first).
  ~DistributedService() { coordinator_.reset(); }

  DistributedService(const DistributedService&) = delete;
  DistributedService& operator=(const DistributedService&) = delete;

  // -------------------------------------------------------------------
  // Writes (any thread; serialised internally)
  // -------------------------------------------------------------------

  void build(const std::vector<point_t>& pts) {
    std::lock_guard<std::mutex> g(write_mu_);
    coordinator_->load(pts);
    // Bulk loads bypass the commit path and hence every WAL — the loaded
    // state is only durable through a full checkpoint (same discipline as
    // the in-process service).
    if (cfg_.durability.armed()) checkpoint_all_locked();
  }

  std::uint64_t insert_batch(const std::vector<point_t>& pts) {
    return apply_updates(pts, /*is_delete=*/false);
  }

  std::uint64_t delete_batch(const std::vector<point_t>& pts) {
    return apply_updates(pts, /*is_delete=*/true);
  }

  // Mixed FIFO update group (pair = {is_delete, point}).
  std::uint64_t commit(const std::vector<std::pair<bool, point_t>>& updates) {
    std::lock_guard<std::mutex> g(write_mu_);
    coordinator_->commit(updates);
    checkpoint_if_topology_changed();
    return coordinator_->epoch();
  }

  // Explicitly hand shard `i` (route position) to `node` — the manual
  // rebalance hook; the automatic policy is cfg.balance_nodes.
  void migrate(std::size_t shard, NodeId node) {
    std::lock_guard<std::mutex> g(write_mu_);
    coordinator_->migrate(shard, node);
    checkpoint_if_topology_changed();
  }

  // -------------------------------------------------------------------
  // Durability (no-ops unless cfg.durability is armed)
  // -------------------------------------------------------------------

  // Snapshot every live host and truncate its WAL, then reset the
  // coordinator's marker log. Ordering matters: host checkpoints first —
  // if a crash interrupts the sequence, leftover markers merely point at
  // epochs the new manifests already absorb (records below a checkpoint
  // are skipped on replay), whereas resetting markers first could strand
  // acked-but-not-yet-checkpointed WAL records above a vanished cut.
  void checkpoint_all() {
    std::lock_guard<std::mutex> g(write_mu_);
    checkpoint_all_locked();
  }

  // Rebuild the cluster's state from the base directory: per-node
  // checkpoint + WAL tail, cut uniformly at the coordinator's last commit
  // marker, deduped by shard key (a migrated shard may appear in two
  // nodes' checkpoints — the higher content version wins). The recovered
  // multiset is bulk-loaded through the coordinator (fresh topology) and
  // immediately re-checkpointed. Call on a freshly constructed facade.
  void recover_from_disk() {
    std::lock_guard<std::mutex> g(write_mu_);
    if (!cfg_.durability.armed()) return;
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t cut =
        psi::durability::last_marker(cfg_.durability.dir + "/coordinator");
    std::map<std::uint64_t, psi::durability::RecoveredShard<coord_t, kDim>>
        best;
    for (std::size_t i = 0; i < hosts_.size(); ++i) {
      const NodeId id = static_cast<NodeId>(i + 1);
      auto rec = psi::durability::recover<coord_t, kDim>(node_dir(id), cut);
      if (!rec.found) continue;
      for (auto& s : rec.shards) {
        const auto it = best.find(s.key);
        if (it == best.end() || s.version > it->second.version) {
          best[s.key] = std::move(s);
        }
      }
    }
    std::vector<point_t> pts;
    for (auto& [key, shard] : best) {
      pts.insert(pts.end(), shard.pts.begin(), shard.pts.end());
    }
    coordinator_->load(pts);
    checkpoint_all_locked();
    recovery_ms_ = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  }

  // Crash-test support: destroy host `idx` (0-based) outright — its
  // transport binding disappears mid-deployment, exactly as a killed
  // process would. Queries and commits routed at it will fail until
  // recover_host() re-homes its shards.
  void crash_host(std::size_t idx) {
    std::lock_guard<std::mutex> g(write_mu_);
    hosts_.at(idx).reset();
  }

  // Re-install the dead host's shards on the survivors from its
  // durability directory (checkpoint + WAL tail below the marker cut).
  void recover_host(std::size_t idx) {
    std::lock_guard<std::mutex> g(write_mu_);
    const NodeId id = static_cast<NodeId>(idx + 1);
    coordinator_->recover_host(id, node_dir(id));
  }

  // -------------------------------------------------------------------
  // Queries (any thread, lock-free planning)
  // -------------------------------------------------------------------

  std::vector<point_t> range_list(const box_t& query) const {
    std::unique_ptr<api::ConcurrentSink<coord_t, kDim>> sink;
    fan_out(
        QueryKind::kRangeList,
        [&](WireWriter& w) { w.put_box(query); },
        [&](const route_t& rt) { return rt.map.shard_range_for_box(query); },
        [&] { sink = std::make_unique<api::ConcurrentSink<coord_t, kDim>>(); },
        [&](const point_t& p) { (*sink)(p); });
    return sink->take();
  }

  std::size_t range_count(const box_t& query) const {
    const Fanned f = fan_out(
        QueryKind::kRangeCount,
        [&](WireWriter& w) { w.put_box(query); },
        [&](const route_t& rt) { return rt.map.shard_range_for_box(query); },
        [] {}, [](const point_t&) {});
    return static_cast<std::size_t>(f.count);
  }

  std::vector<point_t> ball_list(const point_t& q, double radius) const {
    std::unique_ptr<api::ConcurrentSink<coord_t, kDim>> sink;
    fan_out(
        QueryKind::kBallList,
        [&](WireWriter& w) {
          w.put_point(q);
          w.put_f64(radius);
        },
        [&](const route_t& rt) {
          return rt.map.shard_range_for_box(
              service::ball_bounding_box(q, radius));
        },
        [&] { sink = std::make_unique<api::ConcurrentSink<coord_t, kDim>>(); },
        [&](const point_t& p) { (*sink)(p); });
    return sink->take();
  }

  std::size_t ball_count(const point_t& q, double radius) const {
    const Fanned f = fan_out(
        QueryKind::kBallCount,
        [&](WireWriter& w) {
          w.put_point(q);
          w.put_f64(radius);
        },
        [&](const route_t& rt) {
          return rt.map.shard_range_for_box(
              service::ball_bounding_box(q, radius));
        },
        [] {}, [](const point_t&) {});
    return static_cast<std::size_t>(f.count);
  }

  // k nearest neighbours across every node, in increasing distance order.
  // Each node returns its local top-k (over the shards it owns); the exact
  // global top-k is the ConcurrentKnnBuffer merge at the join.
  std::vector<point_t> knn(const point_t& q, std::size_t k) const {
    std::unique_ptr<api::ConcurrentKnnBuffer<coord_t, kDim>> buf;
    fan_out(
        QueryKind::kKnn,
        [&](WireWriter& w) {
          w.put_point(q);
          w.put_u64(k);
        },
        [&](const route_t& rt) {
          // kNN prunes by distance, not routing: every shard is in scope.
          // A shardless route yields an *inverted* run — the shape
          // make_coverage treats as empty — never {0, 0}, which would
          // slice one element out of an empty version vector.
          return rt.keys.empty()
                     ? std::pair<std::size_t, std::size_t>{1, 0}
                     : std::pair<std::size_t, std::size_t>{0,
                                                           rt.keys.size() - 1};
        },
        [&] {
          buf = std::make_unique<api::ConcurrentKnnBuffer<coord_t, kDim>>(k);
        },
        [&](const point_t& p) { buf->offer(squared_distance(p, q), p); });
    std::vector<point_t> out;
    for (const auto& e : buf->merged_sorted()) out.push_back(e.point);
    return out;
  }

  // -------------------------------------------------------------------
  // Cached queries (version-keyed client cache; see the header comment)
  // -------------------------------------------------------------------

  std::shared_ptr<const std::vector<point_t>> range_list_cached(
      const box_t& query) const {
    const auto key = cache_key_t::range(query);
    if (auto hit = cache_.find_list(key, plan_coverage([&](const route_t& rt) {
          return rt.map.shard_range_for_box(query);
        }))) {
      return hit;
    }
    std::unique_ptr<api::ConcurrentSink<coord_t, kDim>> sink;
    const Fanned f = fan_out(
        QueryKind::kRangeList,
        [&](WireWriter& w) { w.put_box(query); },
        [&](const route_t& rt) { return rt.map.shard_range_for_box(query); },
        [&] { sink = std::make_unique<api::ConcurrentSink<coord_t, kDim>>(); },
        [&](const point_t& p) { (*sink)(p); }, /*for_cache=*/true);
    auto pts =
        std::make_shared<const std::vector<point_t>>(sink->take());
    admit_list(key, f, pts);
    return pts;
  }

  std::size_t range_count_cached(const box_t& query) const {
    const auto key = cache_key_t::range(query);
    if (auto hit = cache_.find_count(key, plan_coverage([&](const route_t& rt) {
          return rt.map.shard_range_for_box(query);
        }))) {
      return *hit;
    }
    const Fanned f = fan_out(
        QueryKind::kRangeCount,
        [&](WireWriter& w) { w.put_box(query); },
        [&](const route_t& rt) { return rt.map.shard_range_for_box(query); },
        [] {}, [](const point_t&) {}, /*for_cache=*/true);
    if (f.clean) {
      cache_.put_count(key, f.cov, static_cast<std::size_t>(f.count));
    } else {
      ++torn_skips_;
    }
    return static_cast<std::size_t>(f.count);
  }

  std::shared_ptr<const std::vector<point_t>> ball_list_cached(
      const point_t& q, double radius) const {
    const auto key = cache_key_t::ball(q, radius);
    const auto run_of = [&](const route_t& rt) {
      return rt.map.shard_range_for_box(service::ball_bounding_box(q, radius));
    };
    if (auto hit = cache_.find_list(key, plan_coverage(run_of))) return hit;
    std::unique_ptr<api::ConcurrentSink<coord_t, kDim>> sink;
    const Fanned f = fan_out(
        QueryKind::kBallList,
        [&](WireWriter& w) {
          w.put_point(q);
          w.put_f64(radius);
        },
        run_of,
        [&] { sink = std::make_unique<api::ConcurrentSink<coord_t, kDim>>(); },
        [&](const point_t& p) { (*sink)(p); }, /*for_cache=*/true);
    auto pts = std::make_shared<const std::vector<point_t>>(sink->take());
    admit_list(key, f, pts);
    return pts;
  }

  // -------------------------------------------------------------------
  // Observers
  // -------------------------------------------------------------------

  std::uint64_t epoch() const { return coordinator_->epoch(); }
  std::size_t num_shards() const { return coordinator_->route()->keys.size(); }
  std::size_t num_nodes() const { return hosts_.size(); }

  // Lock-free: the acked population total published with the route (never
  // blocks behind an in-flight commit or bulk load).
  std::size_t size() const { return coordinator_->route()->total_points; }

  DistributedStats stats() const {
    std::lock_guard<std::mutex> g(write_mu_);
    DistributedStats s;
    s.coordinator = coordinator_->stats();
    s.cache_hits = cache_.hits();
    s.cache_misses = cache_.misses();
    s.cache_cross_epoch_hits = cache_.cross_epoch_hits();
    s.cache_torn_skips = torn_skips_.load(std::memory_order_relaxed);
    s.recovery_ms = recovery_ms_;
    if constexpr (telemetry::kEnabled) collect_telemetry(s);
    return s;
  }

  // Test support: the full multiset, fetched shard by shard over the
  // transport (serialised with writers — a consistent cut).
  std::vector<point_t> flatten() const {
    std::lock_guard<std::mutex> g(write_mu_);
    return coordinator_->flatten();
  }

 private:
  using cache_key_t = service::QueryKey<coord_t, kDim>;

  std::string node_dir(NodeId id) const {
    return cfg_.durability.dir + "/node-" + std::to_string(id);
  }

  void checkpoint_all_locked() {
    for (auto& h : hosts_) {
      if (h) h->checkpoint();
    }
    coordinator_->truncate_marker_log();
    const auto s = coordinator_->stats();
    last_topology_events_ = s.splits + s.merges + s.migrations;
  }

  // Shard splits, merges, and migrations redistribute data through install
  // RPCs, which are NOT WAL events — a topology change is only durable
  // once checkpointed. Checkpointing after every commit that rebalanced
  // shrinks the undurable window to the rebalance itself (documented
  // caveat; topology changes are rare, so the cost amortises to nothing).
  void checkpoint_if_topology_changed() {
    if (!cfg_.durability.armed()) return;
    const auto s = coordinator_->stats();
    const std::uint64_t topo = s.splits + s.merges + s.migrations;
    if (topo == last_topology_events_) return;
    checkpoint_all_locked();  // refreshes last_topology_events_
  }

  struct Fanned {
    std::uint64_t count = 0;            // count kinds
    service::CacheCoverage cov;          // coverage of the plan that ran
    bool clean = true;                   // piggyback matched the plan
  };

  std::uint64_t apply_updates(const std::vector<point_t>& pts,
                              bool is_delete) {
    std::vector<std::pair<bool, point_t>> updates;
    updates.reserve(pts.size());
    for (const auto& p : pts) updates.emplace_back(is_delete, p);
    return commit(updates);
  }

  // One kTelemetry RPC per host (serialised under write_mu_ with the rest
  // of stats()), decoded into per-host snapshots and folded into the
  // cluster-wide merge.
  void collect_telemetry(DistributedStats& s) const {
    PSI_TRACE_SPAN("rpc.telemetry");
    s.read_hists.assign(telemetry::kNumReadOps, {});
    s.stage_hists.assign(telemetry::kNumStages, {});
    std::map<std::uint64_t, telemetry::HeatEntry> merged_heat;
    for (NodeId node : coordinator_->nodes()) {
      WireWriter w;
      Message reply = expect_ok(
          transport_.call(node, std::move(w).finish(MsgType::kTelemetry)),
          "telemetry");
      WireReader r(reply);
      HostTelemetry host;
      host.node = node;
      const std::uint32_t n_reads = r.get_u32();
      for (std::uint32_t i = 0; i < n_reads; ++i) {
        telemetry::HistogramSnapshot snap = r.get_histogram();
        if (i < s.read_hists.size()) s.read_hists[i].merge(snap);
        host.reads.push_back(std::move(snap));
      }
      const std::uint32_t n_stages = r.get_u32();
      for (std::uint32_t i = 0; i < n_stages; ++i) {
        telemetry::HistogramSnapshot snap = r.get_histogram();
        if (i < s.stage_hists.size()) s.stage_hists[i].merge(snap);
        host.stages.push_back(std::move(snap));
      }
      const std::uint32_t n_heat = r.get_u32();
      for (std::uint32_t i = 0; i < n_heat; ++i) {
        telemetry::HeatEntry e;
        e.key = r.get_u64();
        e.reads = r.get_u64();
        e.writes = r.get_u64();
        auto& m = merged_heat[e.key];
        m.key = e.key;
        m.reads += e.reads;
        m.writes += e.writes;
        host.heat.push_back(e);
      }
      s.hosts.push_back(std::move(host));
    }
    for (const auto& h : s.read_hists) {
      s.read_latency.push_back(telemetry::summarize(h));
    }
    for (const auto& h : s.stage_hists) {
      s.stage_latency.push_back(telemetry::summarize(h));
    }
    for (auto& [key, e] : merged_heat) s.heat.push_back(e);
  }

  // Coverage of the *current* plan for a query — the cache lookup key.
  template <typename RunOf>
  service::CacheCoverage plan_coverage(RunOf run_of) const {
    const auto route = coordinator_->route();
    return service::make_coverage(route->epoch, route->stamp, run_of(*route),
                                  route->versions);
  }

  void admit_list(const cache_key_t& key, const Fanned& f,
                  const std::shared_ptr<const std::vector<point_t>>& pts) const {
    if (f.clean) {
      cache_.put_list(key, f.cov, pts);
    } else {
      ++torn_skips_;
    }
  }

  // The fan-out core. Plans against the current route, issues one kQuery
  // per owning node in parallel, streams decoded points into `emit`
  // (thread-safe via the caller's concurrent sink), and accumulates count
  // payloads. Shards reported missing (handoff raced the plan) re-route
  // through the refreshed route; a shard key that vanished entirely
  // (split/merge/load) restarts the whole plan with `reset`.
  //
  // `for_cache` turns on the admission bookkeeping — coverage slicing and
  // piggyback-vs-plan validation. The uncached entry points skip it: they
  // discard Fanned.cov/clean, so sorting a per-shard version index per
  // query would be pure overhead on the hot path.
  Fanned fan_out(
      QueryKind kind, const std::function<void(WireWriter&)>& put_params,
      const std::function<std::pair<std::size_t, std::size_t>(const route_t&)>&
          run_of,
      const std::function<void()>& reset,
      const std::function<void(const point_t&)>& emit,
      bool for_cache = false) const {
    PSI_TRACE_SPAN("client.fan_out");
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto route = coordinator_->route();
      const auto run = run_of(*route);
      Fanned out;
      // Empty plan (degenerate query run / shardless route): the run is
      // already inverted here, so make_coverage keeps the version slice
      // empty — and using the RAW run (not a normalised one) means the
      // stored coverage equals what plan_coverage computes on lookup, so
      // repeat degenerate queries hit instead of churning the ring.
      if (route->keys.empty() || run.first > run.second) {
        if (for_cache) {
          out.cov = service::make_coverage(route->epoch, route->stamp, run,
                                           route->versions);
        }
        reset();
        return out;
      }
      if (for_cache) {
        out.cov = service::make_coverage(route->epoch, route->stamp, run,
                                         route->versions);
      }
      reset();

      // The work list: (key, destination node), re-filled by re-routes.
      std::vector<std::pair<std::uint64_t, NodeId>> work;
      // Sorted (key -> planned version) index for reply validation: a kNN
      // plan spans every shard, so per-piggyback linear scans of the run
      // would cost O(shards^2) per query.
      std::vector<std::pair<std::uint64_t, std::uint64_t>> plan_versions;
      for (std::size_t i = run.first; i <= run.second; ++i) {
        work.emplace_back(route->keys[i], route->owners[i]);
        if (for_cache) {
          plan_versions.emplace_back(route->keys[i], route->versions[i]);
        }
      }
      std::sort(plan_versions.begin(), plan_versions.end());

      std::atomic<std::uint64_t> count{0};
      std::atomic<bool> clean{true};
      std::mutex miss_mu;
      std::vector<std::uint64_t> missing;
      bool restart = false;

      for (int round = 0; !work.empty() && !restart; ++round) {
        if (round >= 8) {
          throw TransportError("query could not settle: shards kept moving");
        }
        // Group this round's shards by destination node.
        struct Sub {
          NodeId node;
          std::vector<std::uint64_t> keys;
        };
        std::vector<Sub> subs;
        for (const auto& [key, node] : work) {
          auto it = std::find_if(subs.begin(), subs.end(), [&](const Sub& s) {
            return s.node == node;
          });
          if (it == subs.end()) {
            subs.push_back(Sub{node, {key}});
          } else {
            it->keys.push_back(key);
          }
        }
        work.clear();
        missing.clear();

        TaskGroup tasks;
        for (const Sub& sub : subs) {
          tasks.spawn([&, sub] {
            PSI_TRACE_SPAN("rpc.query");
            WireWriter w;
            w.put_u8(static_cast<std::uint8_t>(kind));
            put_params(w);
            w.put_u32(static_cast<std::uint32_t>(sub.keys.size()));
            for (std::uint64_t key : sub.keys) w.put_u64(key);
            Message reply = expect_ok(
                transport_.call(sub.node, std::move(w).finish(MsgType::kQuery)),
                "query");
            WireReader r(reply);
            const std::uint32_t n_present = r.get_u32();
            for (std::uint32_t j = 0; j < n_present; ++j) {
              const std::uint64_t key = r.get_u64();
              const std::uint64_t version = r.get_u64();
              if (!for_cache) continue;  // piggyback read, not validated
              // Compare against the plan: any drift means a commit or
              // reload landed mid-fan-out — the result is still a valid
              // read-committed answer, but must not be cached.
              const auto it = std::lower_bound(
                  plan_versions.begin(), plan_versions.end(),
                  std::pair<std::uint64_t, std::uint64_t>{key, 0});
              if (it == plan_versions.end() || it->first != key ||
                  it->second != version) {
                clean.store(false, std::memory_order_relaxed);
              }
            }
            const std::uint32_t n_missing = r.get_u32();
            if (n_missing != 0) {
              std::lock_guard<std::mutex> g(miss_mu);
              for (std::uint32_t j = 0; j < n_missing; ++j) {
                missing.push_back(r.get_u64());
              }
            }
            switch (kind) {
              case QueryKind::kRangeList:
              case QueryKind::kBallList:
              case QueryKind::kKnn: {
                const std::vector<point_t> pts =
                    r.template get_points<coord_t, kDim>();
                for (const point_t& p : pts) emit(p);
                break;
              }
              case QueryKind::kRangeCount:
              case QueryKind::kBallCount:
                count.fetch_add(r.get_u64(), std::memory_order_relaxed);
                break;
            }
          });
        }
        tasks.wait();

        // Re-route every missing shard through the freshest route; a key
        // that no longer exists anywhere means the topology changed under
        // us — replan from scratch.
        if (!missing.empty()) {
          const auto fresh = coordinator_->route();
          for (std::uint64_t key : missing) {
            std::size_t idx = fresh->keys.size();
            for (std::size_t i = 0; i < fresh->keys.size(); ++i) {
              if (fresh->keys[i] == key) {
                idx = i;
                break;
              }
            }
            if (idx == fresh->keys.size()) {
              restart = true;
              break;
            }
            work.emplace_back(key, fresh->owners[idx]);
            clean.store(false, std::memory_order_relaxed);  // moved mid-plan
          }
        }
      }
      if (restart) continue;
      out.count = count.load(std::memory_order_relaxed);
      out.clean = clean.load(std::memory_order_relaxed);
      return out;
    }
    throw TransportError("query could not settle: topology kept changing");
  }

  Transport& transport_;
  std::vector<std::unique_ptr<host_t>> hosts_;
  std::unique_ptr<coordinator_t> coordinator_;
  mutable std::mutex write_mu_;
  mutable service::QueryCache<coord_t, kDim> cache_;
  mutable std::atomic<std::uint64_t> torn_skips_{0};
  DistributedConfig cfg_;
  double recovery_ms_ = 0;
  std::uint64_t last_topology_events_ = 0;
};

}  // namespace psi::net
