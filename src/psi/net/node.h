// PSI-Lib net layer: nodes of the distributed service.
//
// Two roles, connected only through a Transport (transport.h) speaking the
// wire format (wire.h) — never through shared pointers:
//
//   * ShardHost — one per node. Owns the *replicas* of the shards placed on
//     it (a service::ShardStore keyed by stable shard key) and acts as the
//     node-local group committer: a kCommitBatch lands in exactly the
//     settle-replay / grace-period / pending-log / swap discipline the
//     in-process writer uses, followed by an atomic publication of the
//     node-local read view. Queries execute lock-free against that view —
//     a host serves reads at full speed while a commit is in flight, and a
//     reply piggybacks the content version of every shard it answered
//     from, which is what lets remote clients reuse cached results across
//     epochs (query_cache.h).
//
//   * Coordinator — exactly one. Owns the authoritative ShardDirectory
//     (shard ranges, stable keys, placements, content versions, topology
//     stamp — shard_map.h) and every write: it routes update batches into
//     per-shard runs, ships one kCommitBatch per touched node (in
//     parallel), joins the epoch acks, and then rebalances — splitting
//     overgrown shards, merging underfull neighbours, and *migrating*
//     shards between nodes (fetch → install → atomic route flip → drop;
//     the RCU grace discipline of the host's published views keeps
//     in-flight readers of the old location safe, and readers that race
//     the drop retry through the refreshed route).
//
// The message protocol is strictly coordinator/client -> host; hosts never
// call out. That acyclicity is what makes the blocking RPC transport safe:
// no cycle of threads waiting on each other's handlers can form.
//
// Consistency contract (the distributed read path): each *shard* is
// answered from exactly one host-published view — per-shard atomicity —
// but a read-committed query fanning out across nodes may observe
// different commits on different shards if a commit lands mid-fan-out.
// The piggybacked version vector makes this detectable: the client only
// admits a result to its cache when every piggybacked version matches the
// route view it planned with. Pinned reads (wire v3) close the gap to
// snapshot isolation: the client fans out the exact per-shard content
// versions its pinned route names, and hosts answer each shard from
// whichever retained publication still holds that version — the union is
// the global state at the pinned epoch, by construction. A version past
// the retention horizon comes back in the reply's retired list and
// surfaces as api::EpochRetired.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "psi/durability/checkpoint.h"
#include "psi/durability/recovery.h"
#include "psi/geometry/knn_buffer.h"
#include "psi/net/transport.h"
#include "psi/net/wire.h"
#include "psi/parallel/task_group.h"
#include "psi/service/epoch.h"
#include "psi/service/group_commit.h"  // ServiceConfig
#include "psi/service/shard_map.h"
#include "psi/service/shard_store.h"
#include "psi/service/snapshot.h"
#include "psi/sfc/codec.h"
#include "psi/telemetry/metrics.h"
#include "psi/telemetry/trace.h"

namespace psi::net {

// ---------------------------------------------------------------------------
// ShardHost
// ---------------------------------------------------------------------------

template <typename Index>
class ShardHost {
 public:
  using point_t = typename Index::point_t;
  using coord_t = typename point_t::coord_t;
  static constexpr int kDim = point_t::kDim;
  using box_t = Box<coord_t, kDim>;
  using store_t = service::ShardStore<Index>;
  using run_t = typename store_t::run_t;
  using factory_t = typename store_t::factory_t;

  // Binds itself on the transport; unbound (and hence quiescent) again in
  // the destructor. The host must outlive any in-flight call to it —
  // Transport::unbind guarantees that by completing in-flight handlers.
  // With `dur` armed, every kCommitBatch is appended to this node's local
  // WAL and fsync'd before the ack — the coordinator's commit cut relies
  // on an acked batch being on this host's durable media.
  //
  // `retained_epochs` > 1 keeps that many node-view publications alive so
  // pinned reads (wire v3) can be answered at the exact shard versions a
  // client's pinned route names, even after later commits replaced the
  // live replicas. The store is switched to its retention-pinned grace
  // discipline in that case (shard_store.h) so commits never block on the
  // pinned replicas.
  ShardHost(NodeId id, Transport& transport, factory_t factory,
            bool pipelined_commits = true,
            psi::durability::DurabilityConfig dur = {},
            std::size_t retained_epochs = 1)
      : id_(id),
        transport_(transport),
        store_(std::move(factory), pipelined_commits),
        retained_views_(retained_epochs),
        dur_(std::move(dur)) {
    store_.set_metrics(metrics_);
    store_.set_retention_pinned(retained_epochs > 1);
    if (dur_.armed()) wal_.open(dur_.dir, dur_);
    publish();
    transport_.bind_stream(
        id_, [this](NodeId from, Message req, StreamWriter& stream) {
          return handle(from, std::move(req), stream);
        });
  }

  ~ShardHost() { transport_.unbind(id_); }

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  NodeId id() const { return id_; }

  // Snapshot relocatable slots as raw arena images (default). The facade
  // turns this off when DistributedConfig::arena_handoff is off so the
  // fig15 comparison can measure the point-wise checkpoint path.
  void set_arena_checkpoints(bool v) { arena_checkpoints_ = v; }

  // Diagnostic observers (tests). Reads the published view — safe from any
  // thread.
  std::size_t hosted_shards() const {
    return view_slot_.acquire()->entries.size();
  }
  std::size_t hosted_points() const {
    // Bind the view first: a range-for over `acquire()->entries` would
    // destroy the temporary shared_ptr before the loop body runs (C++20 —
    // P2718's lifetime extension is C++23), letting a concurrent publish
    // free the vector mid-iteration.
    const std::shared_ptr<const view_t> view = view_slot_.acquire();
    std::size_t n = 0;
    for (const auto& e : view->entries) n += e.index->size();
    return n;
  }

  // Snapshot every hosted shard to this node's durability directory and
  // truncate the local WAL below it (durability/checkpoint.h). Driven by
  // the facade's checkpoint_all(); no-op unless constructed durable.
  // Commits are stalled for the duration — host checkpoints are explicit,
  // coarse events, not a per-commit cost.
  void checkpoint() {
    if (!wal_.is_open()) return;
    std::lock_guard<std::mutex> g(mu_);
    psi::durability::Manifest m;
    m.epoch = last_epoch_;
    m.watermark = wal_.rotate();
    const std::uint64_t watermark = m.watermark;
    std::vector<psi::durability::CheckpointShard<coord_t, kDim>> shards;
    m.shards.reserve(keys_.size());
    shards.reserve(keys_.size());
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      psi::durability::ManifestShard s;
      s.key = keys_[i];
      s.version = versions_[i];
      s.factory_id = store_.origin_of(i);
      m.shards.push_back(std::move(s));
      // Relocatable slots snapshot as one raw arena image (serialize is a
      // header + chunk memcpy — no flatten, no per-point encode); the rest
      // take the point codec.
      psi::durability::CheckpointShard<coord_t, kDim> data;
      if (arena_checkpoints_ && store_.slot_relocatable(i)) {
        data.image = store_.serialize_slot(i);
      } else {
        data.pts = store_.flatten(i);
      }
      shards.push_back(std::move(data));
    }
    psi::durability::write_checkpoint<coord_t, kDim>(dur_.dir, std::move(m),
                                                     shards, dur_.fsync);
    wal_.truncate_below(watermark);
  }

  bool durable() const { return wal_.is_open(); }

 private:
  // The node-local read view: one immutable entry per hosted shard,
  // published atomically after every mutation. Queries bind to one view
  // for their whole execution — per-shard read atomicity, and the RCU
  // grace discipline (readers pin replicas via shared_ptr; the store's
  // standby mutation waits out old views) carries over unchanged.
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t version = 0;
    std::shared_ptr<const Index> index;
  };
  // Entries plus the heat cells positionally aligned with them: queries
  // bump the read counter of the entries they actually touch with one
  // relaxed fetch_add (cells null when telemetry is disabled).
  struct view_t {
    std::vector<Entry> entries;
    std::shared_ptr<telemetry::ShardHeat::cells_t> heat;
  };

  Message handle(NodeId /*from*/, Message req, StreamWriter& stream) {
    try {
      switch (req.type) {
        case MsgType::kCommitBatch:
          return on_commit(req);
        case MsgType::kQuery:
          return on_query(req, stream);
        case MsgType::kInstallShard:
          return on_install(req);
        case MsgType::kFetchShard:
          return on_fetch(req);
        case MsgType::kDropShard:
          return on_drop(req);
        case MsgType::kStat:
          return on_stat();
        case MsgType::kTelemetry:
          return on_telemetry();
        default:
          return make_error("host: unexpected message type");
      }
    } catch (const std::exception& e) {
      return make_error(std::string("host ") + std::to_string(id_) + ": " +
                        e.what());
    }
  }

  // kCommitBatch: [u64 epoch][u32 n]{u64 key, u64 version, runs}*
  // -> kCommitAck: [u64 epoch][u32 n]{u64 key, u64 size}*
  Message on_commit(Message& req) {
    PSI_TRACE_SPAN("host.commit");
    WireReader r(req);
    const std::uint64_t epoch = r.get_u64();
    const std::uint32_t n = r.get_u32();
    struct Batch {
      std::size_t slot;
      std::uint64_t key, version;
      std::vector<run_t> runs;
    };
    std::vector<Batch> batches;
    batches.reserve(n);
    std::lock_guard<std::mutex> g(mu_);
    for (std::uint32_t i = 0; i < n; ++i) {
      Batch b;
      b.key = r.get_u64();
      b.version = r.get_u64();
      b.runs = r.template get_runs<point_t>();
      b.slot = slot_of(b.key);
      if (b.slot == npos) {
        throw WireError("commit addressed unknown shard key " +
                        std::to_string(b.key));
      }
      // The parallel apply below requires distinct slots; a frame naming
      // one shard twice is corrupt (the coordinator coalesces per shard).
      for (const Batch& prev : batches) {
        if (prev.slot == b.slot) {
          throw WireError("commit names shard key " + std::to_string(b.key) +
                          " twice");
        }
      }
      batches.push_back(std::move(b));
    }
    // Log the whole batch as one WAL record *before* apply moves the runs
    // out, fsync'd below before the ack leaves: the coordinator's commit
    // cut treats an acked epoch as on this node's durable media.
    if constexpr (psi::durability::kEnabled) {
      if (wal_.is_open()) {
        telemetry::ScopedTimer t(&metrics_->wal_append);
        std::vector<psi::durability::CommitShardRef<point_t>> entry;
        entry.reserve(batches.size());
        for (const Batch& b : batches) {
          entry.push_back({b.key, b.version, &b.runs});
        }
        wal_.append(psi::durability::encode_commit_record(epoch, entry));
        if (epoch > last_epoch_) last_epoch_ = epoch;
      }
    }
    // Apply in parallel over distinct slots — the same fork the in-process
    // writer uses — then publish the new node view once.
    TaskGroup tasks;
    for (auto& b : batches) {
      if constexpr (telemetry::kEnabled) {
        std::uint64_t n_pts = 0;
        for (const run_t& run : b.runs) n_pts += run.pts.size();
        host_heat_.record_write(b.slot, n_pts);
      }
      tasks.spawn([this, &b] {
        telemetry::ScopedTimer t(
            &metrics_->stage_hist(telemetry::Stage::kApply));
        store_.apply(b.slot, std::move(b.runs));
      });
    }
    tasks.wait();
    for (const auto& b : batches) versions_[b.slot] = b.version;
    publish();
    store_.spawn_replays();

    if constexpr (psi::durability::kEnabled) {
      if (wal_.is_open()) {
        const std::uint64_t ns = wal_.sync();
        if constexpr (telemetry::kEnabled) {
          if (ns != 0) metrics_->wal_fsync.record(ns);
        }
      }
    }

    WireWriter w;
    w.put_u64(epoch);
    w.put_u32(n);
    for (const auto& b : batches) {
      w.put_u64(b.key);
      w.put_u64(store_.size_of(b.slot));
    }
    return std::move(w).finish(MsgType::kCommitAck);
  }

  // kQuery (wire v3):
  //   [u8 kind][u8 flags][u32 chunk_points][u32 credit][params]
  //   [u32 nkeys]{u64 key, u64 version}*
  // The version is the shard content version the caller's route expects;
  // checked only when kQueryFlagPinned is set (read-committed callers send
  // 0). Plain reply -> kQueryResult:
  //   [u32 n_present]{u64 key, u64 version}* [u32 n_missing]{u64 key}*
  //   [u32 n_retired]{u64 key}* [payload: points (list/knn) | u64 (count)]
  // With kQueryFlagStream on a list kind, the payload instead flows as
  // 0+ kQueryChunk frames of at most chunk_points points each (gated by
  // the caller's credit window) and the final frame is kQueryDone:
  //   [present/missing/retired as above]
  //   [u64 total_points][u64 chunks][u64 backpressure_waits]
  // Lock-free: executes entirely against acquired immutable views.
  Message on_query(Message& req, StreamWriter& stream) {
    PSI_TRACE_SPAN("host.query");
    WireReader r(req);
    const auto kind = static_cast<QueryKind>(r.get_u8());
    const std::uint8_t flags = r.get_u8();
    const std::uint32_t chunk_points = r.get_u32();
    const std::uint32_t credit = r.get_u32();
    const bool pinned = (flags & kQueryFlagPinned) != 0;
    const bool list_kind = kind == QueryKind::kRangeList ||
                           kind == QueryKind::kBallList ||
                           kind == QueryKind::kKnn;
    const bool streamed = (flags & kQueryFlagStream) != 0 && list_kind;
    telemetry::ScopedTimer timer(&metrics_->read_hist(read_op_of(kind)));
    box_t box{};
    point_t q{};
    double radius = 0;
    std::uint64_t k = 0;
    switch (kind) {
      case QueryKind::kRangeList:
      case QueryKind::kRangeCount:
        box = r.template get_box<coord_t, kDim>();
        break;
      case QueryKind::kBallList:
      case QueryKind::kBallCount:
        q = r.template get_point<coord_t, kDim>();
        radius = r.get_f64();
        break;
      case QueryKind::kKnn:
        q = r.template get_point<coord_t, kDim>();
        k = r.get_u64();
        break;
    }
    const std::uint32_t nkeys = r.get_u32();
    // The views this query may answer from: just the live publication, or
    // — for a pinned read — every retained one, newest first. Each held
    // shared_ptr pins its replicas for the whole execution (RCU).
    std::vector<std::shared_ptr<const view_t>> views;
    if (pinned) {
      views = retained_views_.all();
    } else {
      views.push_back(view_slot_.acquire());
    }
    const view_t& newest = *views.front();
    // Heat accounting tracks live traffic only: an entry's position in the
    // current publication is its heat cell; pinned hits on older retained
    // views don't count.
    const auto heat_of = [&](const Entry* e) {
      if (e >= newest.entries.data() &&
          e < newest.entries.data() + newest.entries.size()) {
        telemetry::record_read(
            newest.heat, static_cast<std::size_t>(e - newest.entries.data()));
      }
    };
    // One sorted (key -> entry) index over the newest view per request: a
    // kNN fan-out asks for every hosted shard, so per-key linear scans
    // would be O(h^2) on the hot read path. Older views (pinned fallback
    // only, bounded retention depth) are scanned linearly.
    std::vector<std::pair<std::uint64_t, const Entry*>> by_key;
    by_key.reserve(newest.entries.size());
    for (const Entry& e : newest.entries) by_key.emplace_back(e.key, &e);
    std::sort(by_key.begin(), by_key.end());
    std::vector<const Entry*> present;
    std::vector<std::uint64_t> missing;
    std::vector<std::uint64_t> retired;
    for (std::uint32_t i = 0; i < nkeys; ++i) {
      const std::uint64_t key = r.get_u64();
      const std::uint64_t want_version = r.get_u64();
      const auto it = std::lower_bound(
          by_key.begin(), by_key.end(), key,
          [](const auto& kv, std::uint64_t kk) { return kv.first < kk; });
      const Entry* live =
          (it != by_key.end() && it->first == key) ? it->second : nullptr;
      if (!pinned) {
        if (live != nullptr) {
          present.push_back(live);
        } else {
          missing.push_back(key);  // migrated away: the client re-routes
        }
        continue;
      }
      // Pinned: serve the exact content version the caller's route named,
      // from whichever retained publication still holds it.
      const Entry* found =
          (live != nullptr && live->version == want_version) ? live : nullptr;
      bool key_seen = live != nullptr;
      for (std::size_t vi = 1; found == nullptr && vi < views.size(); ++vi) {
        for (const Entry& e : views[vi]->entries) {
          if (e.key != key) continue;
          key_seen = true;
          if (e.version == want_version) found = &e;
          break;
        }
      }
      if (found != nullptr) {
        present.push_back(found);
      } else if (key_seen) {
        retired.push_back(key);  // version fell off the retention horizon
      } else {
        missing.push_back(key);  // migrated away: the client re-routes
      }
    }

    const auto put_keysets = [&](WireWriter& w) {
      w.put_u32(static_cast<std::uint32_t>(present.size()));
      for (const Entry* e : present) {
        w.put_u64(e->key);
        w.put_u64(e->version);
      }
      w.put_u32(static_cast<std::uint32_t>(missing.size()));
      for (std::uint64_t key : missing) w.put_u64(key);
      w.put_u32(static_cast<std::uint32_t>(retired.size()));
      for (std::uint64_t key : retired) w.put_u64(key);
    };

    // Streamed list reply: points leave in bounded chunks as the scan
    // produces them — the reply buffer never holds more than one chunk —
    // and the summary rides in the final kQueryDone frame.
    if (streamed) {
      stream.arm(credit == 0 ? kDefaultStreamCredit : credit);
      const std::size_t cap =
          chunk_points == 0 ? kDefaultStreamChunkPoints : chunk_points;
      std::vector<point_t> buf;
      buf.reserve(cap);
      std::uint64_t total = 0;
      std::uint64_t chunks = 0;
      bool open = true;
      const auto flush = [&] {
        if (buf.empty() || !open) return;
        WireWriter cw;
        cw.put_points(buf);
        open = stream.send(std::move(cw).finish(MsgType::kQueryChunk));
        if (open) ++chunks;
        buf.clear();
      };
      const auto emit = [&](const point_t& p) {
        if (!open) return;  // receiver gone / aborted: stop buffering
        ++total;
        buf.push_back(p);
        if (buf.size() >= cap) flush();
      };
      switch (kind) {
        case QueryKind::kRangeList:
          for (const Entry* e : present) {
            heat_of(e);
            e->index->range_visit(box, emit);
          }
          break;
        case QueryKind::kBallList:
          for (const Entry* e : present) {
            heat_of(e);
            e->index->ball_visit(q, radius, emit);
          }
          break;
        case QueryKind::kKnn:
          for (const auto& entry : knn_local(present, q, k, heat_of)) {
            emit(entry);
          }
          break;
        default:
          break;
      }
      flush();
      WireWriter w;
      put_keysets(w);
      w.put_u64(total);
      w.put_u64(chunks);
      w.put_u64(stream.backpressure_waits());
      return std::move(w).finish(MsgType::kQueryDone);
    }

    WireWriter w;
    put_keysets(w);
    switch (kind) {
      case QueryKind::kRangeList: {
        std::vector<point_t> out;
        auto collect = [&](const point_t& p) { out.push_back(p); };
        for (const Entry* e : present) {
          heat_of(e);
          e->index->range_visit(box, collect);
        }
        w.put_points(out);
        break;
      }
      case QueryKind::kRangeCount: {
        std::uint64_t total = 0;
        for (const Entry* e : present) {
          heat_of(e);
          total += e->index->range_count(box);
        }
        w.put_u64(total);
        break;
      }
      case QueryKind::kBallList: {
        std::vector<point_t> out;
        auto collect = [&](const point_t& p) { out.push_back(p); };
        for (const Entry* e : present) {
          heat_of(e);
          e->index->ball_visit(q, radius, collect);
        }
        w.put_points(out);
        break;
      }
      case QueryKind::kBallCount: {
        std::uint64_t total = 0;
        for (const Entry* e : present) {
          heat_of(e);
          total += e->index->ball_count(q, radius);
        }
        w.put_u64(total);
        break;
      }
      case QueryKind::kKnn: {
        w.put_points(knn_local(present, q, k, heat_of));
        break;
      }
    }
    return std::move(w).finish(MsgType::kQueryResult);
  }

  // Node-local top-k across the given shard entries, nearest shard first
  // with root-box pruning — the same walk Snapshot::knn_visit_seq does
  // over a view. The client merges the per-node top-k lists.
  template <typename HeatFn>
  std::vector<point_t> knn_local(const std::vector<const Entry*>& present,
                                 const point_t& q, std::uint64_t k,
                                 const HeatFn& heat_of) const {
    struct Cand {
      double dist2;
      const Entry* e;
    };
    std::vector<Cand> order;
    order.reserve(present.size());
    std::uint64_t population = 0;
    for (const Entry* e : present) {
      population += e->index->size();
      if (e->index->size() == 0) continue;
      order.push_back(Cand{min_squared_distance(e->index->bounds(), q), e});
    }
    std::sort(order.begin(), order.end(),
              [](const Cand& a, const Cand& b) { return a.dist2 < b.dist2; });
    // Clamp k to the queried population before anything reserves: this
    // node can never return more candidates than it holds, and a corrupt
    // frame's k = 2^60 must not turn into a huge allocation (same
    // discipline as the reader's count checks, wire.h).
    const auto keff =
        static_cast<std::size_t>(std::min<std::uint64_t>(k, population));
    KnnBuffer<point_t> buf(keff);
    for (const Cand& c : order) {
      if (buf.full() && c.dist2 >= buf.worst()) break;
      heat_of(c.e);  // heat counts shards actually searched
      c.e->index->knn_visit(q, keff, [&](const point_t& p) {
        buf.offer(squared_distance(p, q), p);
      });
    }
    std::vector<point_t> out;
    out.reserve(buf.sorted().size());
    for (const auto& entry : buf.sorted()) out.push_back(entry.point);
    return out;
  }

  // kInstallShard: [u64 key][u64 version][u64 factory_id][u8 format]
  // then points (kShardFormatPoints) or a CRC-framed arena image blob
  // (kShardFormatArena) -> kOk: [u64 size]. Adopts (or replaces) a shard —
  // bulk load, split output, and handoff destination all land here. A
  // corrupt or mismatched arena image is rejected by adopt (validated
  // before install), surfacing as kError with the slot untouched.
  Message on_install(Message& req) {
    PSI_TRACE_SPAN("host.install");
    WireReader r(req);
    const std::uint64_t key = r.get_u64();
    const std::uint64_t version = r.get_u64();
    const auto factory_id = static_cast<std::size_t>(r.get_u64());
    const std::uint8_t format = r.get_u8();
    std::vector<point_t> pts;
    std::vector<std::uint8_t> image;
    if (format == kShardFormatArena) {
      image = r.get_blob();
    } else if (format == kShardFormatPoints) {
      pts = r.template get_points<coord_t, kDim>();
    } else {
      throw WireError("install: unknown shard format " +
                      std::to_string(format));
    }
    std::lock_guard<std::mutex> g(mu_);
    const std::size_t slot = slot_of(key);
    // Fallible store mutation FIRST (Index::build / adopt can throw),
    // metadata second: an exception must leave keys_/versions_ aligned
    // with the slot array and must not stamp a new version onto old
    // contents.
    std::size_t installed;
    if (slot == npos) {
      installed = format == kShardFormatArena
                      ? store_.insert_slot_raw(store_.num_slots(),
                                               image.data(), image.size(),
                                               factory_id)
                      : (store_.insert_slot(store_.num_slots(), pts,
                                            factory_id),
                         pts.size());
      keys_.push_back(key);
      versions_.push_back(version);
    } else {
      installed = format == kShardFormatArena
                      ? store_.replace_slot_raw(slot, image.data(),
                                                image.size(), factory_id)
                      : (store_.replace_slot(slot, pts, factory_id),
                         pts.size());
      versions_[slot] = version;
    }
    publish();
    WireWriter w;
    w.put_u64(installed);
    return std::move(w).finish(MsgType::kOk);
  }

  // kFetchShard: [u64 key][u8 allow_raw] -> kShardData:
  // [u64 key][u64 version][u64 factory_id][u8 format] then points or an
  // arena image blob. The raw fast path is taken only when the caller
  // allows it AND the slot's backend is relocatable — split/merge/flatten
  // fetches need the points themselves and always pass allow_raw = 0.
  Message on_fetch(Message& req) {
    PSI_TRACE_SPAN("host.fetch");
    WireReader r(req);
    const std::uint64_t key = r.get_u64();
    const bool allow_raw = r.get_u8() != 0;
    std::lock_guard<std::mutex> g(mu_);
    const std::size_t slot = slot_of(key);
    if (slot == npos) {
      throw WireError("fetch of unknown shard key " + std::to_string(key));
    }
    WireWriter w;
    w.put_u64(key);
    w.put_u64(versions_[slot]);
    w.put_u64(store_.origin_of(slot));
    if (allow_raw && store_.slot_relocatable(slot)) {
      w.put_u8(kShardFormatArena);
      w.put_blob(store_.serialize_slot(slot));
    } else {
      w.put_u8(kShardFormatPoints);
      w.put_points(store_.flatten(slot));
    }
    return std::move(w).finish(MsgType::kShardData);
  }

  // kDropShard: [u64 key] -> kOk. Releases a shard after handoff/merge.
  // In-flight readers of older views keep the replicas alive through their
  // shared_ptrs — dropping is a publication event, not a free.
  Message on_drop(Message& req) {
    PSI_TRACE_SPAN("host.drop");
    WireReader r(req);
    const std::uint64_t key = r.get_u64();
    std::lock_guard<std::mutex> g(mu_);
    const std::size_t slot = slot_of(key);
    if (slot != npos) {
      store_.erase_slot(slot);
      keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(slot));
      versions_.erase(versions_.begin() + static_cast<std::ptrdiff_t>(slot));
      publish();
    }
    return Message{MsgType::kOk, {}};
  }

  // kStat -> kStatReply: [u32 n]{u64 key, u64 version, u64 size}*
  Message on_stat() {
    const std::shared_ptr<const view_t> view = view_slot_.acquire();
    WireWriter w;
    w.put_u32(static_cast<std::uint32_t>(view->entries.size()));
    for (const Entry& e : view->entries) {
      w.put_u64(e.key);
      w.put_u64(e.version);
      w.put_u64(e.index->size());
    }
    return std::move(w).finish(MsgType::kStatReply);
  }

  // kTelemetry -> kTelemetryReply:
  //   [u32 r]{histogram}*   read-path histograms (telemetry::ReadOp order)
  //   [u32 s]{histogram}*   stage histograms (telemetry::Stage order)
  //   [u32 n]{u64 key, u64 reads, u64 writes}*   per-shard heat
  // All counts are zero-filled histograms when telemetry is disabled, so
  // a mixed deployment still answers the RPC.
  Message on_telemetry() {
    WireWriter w;
    w.put_u32(static_cast<std::uint32_t>(telemetry::kNumReadOps));
    for (std::size_t i = 0; i < telemetry::kNumReadOps; ++i) {
      w.put_histogram(
          metrics_->read_hist(static_cast<telemetry::ReadOp>(i)).snapshot());
    }
    w.put_u32(static_cast<std::uint32_t>(telemetry::kNumStages));
    for (std::size_t i = 0; i < telemetry::kNumStages; ++i) {
      w.put_histogram(
          metrics_->stage_hist(static_cast<telemetry::Stage>(i)).snapshot());
    }
    std::lock_guard<std::mutex> g(mu_);  // heat observers writer-serialised
    const std::vector<telemetry::HeatEntry> heat = host_heat_.entries();
    w.put_u32(static_cast<std::uint32_t>(heat.size()));
    for (const auto& h : heat) {
      w.put_u64(h.key);
      w.put_u64(h.reads);
      w.put_u64(h.writes);
    }
    return std::move(w).finish(MsgType::kTelemetryReply);
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t slot_of(std::uint64_t key) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return i;
    }
    return npos;
  }

  // Map a wire query kind to the read-path histogram it lands in.
  static telemetry::ReadOp read_op_of(QueryKind kind) {
    switch (kind) {
      case QueryKind::kRangeList: return telemetry::ReadOp::kRangeList;
      case QueryKind::kRangeCount: return telemetry::ReadOp::kRangeCount;
      case QueryKind::kBallList: return telemetry::ReadOp::kBallList;
      case QueryKind::kBallCount: return telemetry::ReadOp::kBallCount;
      case QueryKind::kKnn: return telemetry::ReadOp::kKnn;
    }
    return telemetry::ReadOp::kKnn;
  }

  // Publish the current slot state as a fresh immutable view. Caller holds
  // mu_ (or is the constructor).
  void publish() {
    host_heat_.realign(keys_);  // carries counters across installs/drops
    auto v = std::make_shared<view_t>();
    v->heat = host_heat_.cells();
    v->entries.reserve(keys_.size());
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      v->entries.push_back(Entry{keys_[i], versions_[i], store_.live(i)});
    }
    // The ring is keyed by publication sequence, not commit epoch: pinned
    // lookups match on (shard key, content version), which is what the
    // client's pinned route names — host publications and coordinator
    // epochs deliberately need no alignment.
    retained_views_.retain(++publish_seq_, v);
    view_slot_.publish(std::move(v));
  }

  NodeId id_;
  Transport& transport_;
  // Serialises mutations (commit/install/drop arrive from the single
  // coordinator writer already, but fetch may race a commit under the
  // loopback transport's caller-thread execution).
  std::mutex mu_;
  store_t store_;
  std::vector<std::uint64_t> keys_;      // parallel to store_ slots
  std::vector<std::uint64_t> versions_;  // parallel to store_ slots
  service::SnapshotSlot<view_t> view_slot_;
  service::RetainedViews<view_t> retained_views_;
  std::uint64_t publish_seq_ = 0;
  // Telemetry: the host's histogram bundle (shared with the store's replay
  // tasks) and the per-shard heat, keyed by stable shard key and realigned
  // at every publication.
  std::shared_ptr<telemetry::ServiceMetrics> metrics_ =
      std::make_shared<telemetry::ServiceMetrics>();
  telemetry::ShardHeat host_heat_;
  // Durability: local WAL of applied commit batches (idle unless armed).
  psi::durability::DurabilityConfig dur_;
  psi::durability::WalWriter wal_;
  std::uint64_t last_epoch_ = 0;  // highest logged commit epoch (manifest)
  bool arena_checkpoints_ = true;  // see set_arena_checkpoints()
};

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

// The route table published to query clients: everything needed to plan a
// fan-out without touching the coordinator — the shard map for routing,
// keys for addressing, owners for destination nodes, versions + stamp for
// cache coverage (query_cache.h).
template <typename Coord, int D, typename Codec>
struct RouteView {
  using map_t = service::ShardMap<Coord, D, Codec>;
  std::uint64_t epoch = 0;
  std::uint64_t stamp = 0;
  map_t map;
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> versions;
  std::vector<NodeId> owners;
  // Total acked population as of this publication — lock-free size()
  // observer (the facade must not block behind in-flight commits).
  std::size_t total_points = 0;
};

struct CoordinatorStats {
  std::uint64_t epoch = 0;
  std::uint64_t commits = 0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t migrations = 0;
  std::size_t num_shards = 0;
  std::vector<std::size_t> shard_sizes;
  std::vector<NodeId> shard_owners;
};

// Write-side configuration of the distributed service. Inherits the
// in-process knobs (split/merge thresholds, shard floors, cache shape —
// pipelining applies on each host).
struct DistributedConfig : service::ServiceConfig {
  // Keep per-node shard counts within one of each other by migrating
  // shards off the most loaded node after every commit's rebalance.
  bool balance_nodes = true;
  // Ship relocatable shards as raw CRC-framed arena images during
  // migration/host recovery and snapshot them as arena checkpoint files.
  // Off forces the legacy point-wise codec everywhere — the knob exists
  // for the fig15 arena-vs-points comparison, not for production use.
  bool arena_handoff = true;
};

template <typename Coord, int D,
          typename Codec = sfc::MortonCodec<Coord, D>>
class Coordinator {
 public:
  using point_t = Point<Coord, D>;
  using box_t = Box<Coord, D>;
  using map_t = service::ShardMap<Coord, D, Codec>;
  using route_t = RouteView<Coord, D, Codec>;
  using run_t = service::OpRun<point_t>;

  // `nodes` are the ShardHost ids this coordinator may place shards on
  // (already bound on `transport`). The initial uniform map is placed
  // round-robin and shipped as empty installs so every shard exists
  // somewhere from epoch 1.
  //
  // With durability armed, a marker log under `<dir>/coordinator` records
  // a kCommitMark per fully-acked commit — the *commit cut*. A host WAL
  // may hold records past the cut (its ack raced a crash elsewhere);
  // recovery drops everything above the last marker uniformly, so either
  // every node's effects of a commit survive or none do.
  Coordinator(Transport& transport, std::vector<NodeId> nodes,
              DistributedConfig cfg = {})
      : transport_(transport), nodes_(std::move(nodes)), cfg_(cfg),
        dir_(std::max<std::size_t>(1, cfg.initial_shards)),
        retained_routes_(cfg.retained_epochs) {
    if (nodes_.empty()) {
      throw TransportError("coordinator needs at least one node");
    }
    if (cfg_.durability.armed()) {
      marker_wal_.open(cfg_.durability.dir + "/coordinator", cfg_.durability);
    }
    place_round_robin();
    sizes_.assign(dir_.num_shards(), 0);
    for (std::size_t i = 0; i < dir_.num_shards(); ++i) {
      install_shard(i, dir_.owner_of(i), {});
    }
    publish();
  }

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Lock-free route acquisition for query clients.
  std::shared_ptr<const route_t> route() const { return route_slot_.acquire(); }

  // The route as of a past publication epoch, if still within the
  // retention window (cfg.retained_epochs deep); nullptr once retired.
  // Routes are small metadata — retaining them costs nothing next to the
  // host-side replica retention they pair with.
  std::shared_ptr<const route_t> route_at(std::uint64_t epoch) const {
    return retained_routes_.at(epoch);
  }

  std::uint64_t epoch() const { return epoch_.current(); }

  // -------------------------------------------------------------------
  // Writes (externally serialised by the facade)
  // -------------------------------------------------------------------

  // Bulk load: recompute equal-population boundaries, place round-robin,
  // and ship every shard's slice to its owner.
  void load(const std::vector<point_t>& pts) {
    using service::CodedPoint;
    std::vector<CodedPoint<point_t>> coded =
        service::code_and_sort<Codec>(pts);
    std::vector<std::uint64_t> codes(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) codes[i] = coded[i].code;
    // Old shards (possibly under old keys on many nodes) are dropped
    // after the new topology is installed and published.
    const auto old_keys = dir_.keys();
    const auto old_owners = dir_.owners();
    dir_.reset(map_t::from_sorted_codes(
        codes, std::max<std::size_t>(1, cfg_.initial_shards)));
    place_round_robin();
    const std::size_t k = dir_.num_shards();
    sizes_.assign(k, 0);
    TaskGroup tasks;
    for (std::size_t i = 0; i < k; ++i) {
      tasks.spawn([this, i, &coded, &codes] {
        const std::vector<point_t> part =
            service::shard_slice(coded, codes, dir_.map(), i);
        sizes_[i] = part.size();
        install_shard(i, dir_.owner_of(i), part);
      });
    }
    tasks.wait();
    rebalance();
    publish();
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      drop_shard_key(old_keys[i], old_owners[i]);
    }
  }

  // One commit group of updates: route to per-shard runs, ship one
  // kCommitBatch per touched node in parallel, join the epoch acks, then
  // rebalance and publish the next route. `updates` preserves FIFO order
  // per shard (is_delete, point).
  void commit(const std::vector<std::pair<bool, point_t>>& updates) {
    if (updates.empty()) return;
    const std::size_t k = dir_.num_shards();
    std::vector<std::vector<run_t>> runs(k);
    for (const auto& [is_delete, pt] : updates) {
      auto& shard_runs = runs[dir_.map().shard_of(pt)];
      if (shard_runs.empty() || shard_runs.back().is_delete != is_delete) {
        shard_runs.push_back(run_t{is_delete, {}});
      }
      shard_runs.back().pts.push_back(pt);
    }
    // Stamp fresh versions for the touched shards, then group them by
    // owning node into one batch message each.
    struct NodeBatch {
      NodeId node;
      std::vector<std::size_t> shards;
    };
    std::vector<NodeBatch> batches;
    for (std::size_t i = 0; i < k; ++i) {
      if (runs[i].empty()) continue;
      dir_.touch(i);
      const NodeId owner = dir_.owner_of(i);
      auto it = std::find_if(batches.begin(), batches.end(),
                             [&](const NodeBatch& b) { return b.node == owner; });
      if (it == batches.end()) {
        batches.push_back(NodeBatch{owner, {i}});
      } else {
        it->shards.push_back(i);
      }
    }
    const std::uint64_t next_epoch = epoch_.current() + 1;
    TaskGroup tasks;
    for (const NodeBatch& b : batches) {
      tasks.spawn([this, &b, &runs, next_epoch] {
        PSI_TRACE_SPAN("rpc.commit");
        WireWriter w;
        w.put_u64(next_epoch);
        w.put_u32(static_cast<std::uint32_t>(b.shards.size()));
        for (std::size_t i : b.shards) {
          w.put_u64(dir_.key_of(i));
          w.put_u64(dir_.version_of(i));
          w.put_runs(runs[i]);
        }
        Message ack = expect_ok(
            transport_.call(b.node, std::move(w).finish(MsgType::kCommitBatch)),
            "commit");
        WireReader r(ack);
        (void)r.get_u64();  // echoed epoch
        const std::uint32_t n = r.get_u32();
        for (std::uint32_t j = 0; j < n; ++j) {
          const std::uint64_t key = r.get_u64();
          const std::uint64_t size = r.get_u64();
          const std::size_t idx = dir_.index_of_key(key);
          if (idx != decltype(dir_)::npos) sizes_[idx] = size;
        }
      });
    }
    try {
      tasks.wait();
    } catch (...) {
      // Partial commit: some hosts applied (and published node views with
      // the new versions), some did not. Republish the route before
      // surfacing the error so the bumped directory versions reach
      // clients — cached entries keyed on the old versions stop hitting,
      // and a shard whose host did NOT apply simply mismatches the route
      // version in its piggyback, so its results are answered but never
      // cached. Without this, caches would keep serving pre-commit data
      // that direct fan-outs contradict. The epoch is not counted as a
      // commit; the next successful commit realigns versions.
      publish();
      throw;
    }
    // Every touched host has the batch on durable media (their acks
    // follow a local fsync) — durably advance the commit cut before the
    // caller's futures can resolve.
    if constexpr (psi::durability::kEnabled) {
      if (marker_wal_.is_open()) {
        marker_wal_.append(psi::durability::encode_mark_record(next_epoch));
        marker_wal_.sync();
      }
    }
    ++stats_.commits;
    rebalance();
    publish();
  }

  // Migrate shard `i` to `dest`: fetch the frozen replica (no commit can
  // interleave — the coordinator is the single writer), install it under
  // the same key and version, flip the route atomically, then drop the old
  // copy. Readers that raced the drop see a missing key and retry through
  // the refreshed route; readers already inside the old host's view finish
  // safely on the pinned replicas (RCU grace).
  void migrate(std::size_t i, NodeId dest) {
    // The index may come from a route acquired before an interleaved
    // commit changed the topology (split/merge): a stale position past the
    // end is a no-op, not an out-of-bounds read.
    if (i >= dir_.num_shards()) return;
    const NodeId src = dir_.owner_of(i);
    if (src == dest) return;
    PSI_TRACE_SPAN("coord.migrate");
    const std::uint64_t key = dir_.key_of(i);
    // Migration moves the structure, not its contents: when the backend is
    // relocatable the shard travels as one CRC-framed arena image and the
    // destination adopts it with a validate + memcpy — no flatten on the
    // source, no re-sort/rebuild on the destination. Non-arena backends
    // take the point-wise codec below, same as always.
    FetchedShard f = fetch_shard_any(key, src,
                                     /*allow_raw=*/cfg_.arena_handoff);
    if (f.is_arena) {
      install_arena(key, f.version, f.origin, f.image, dest);
    } else {
      install_raw(key, f.version, f.origin, f.pts, dest);
    }
    dir_.move_owner(i, dest);
    ++stats_.migrations;
    publish();  // new route first: late readers route to dest...
    drop_shard_key(key, src);  // ...then the old copy goes away
  }

  CoordinatorStats stats() const {
    CoordinatorStats s = stats_;
    s.epoch = epoch_.current();
    s.num_shards = dir_.num_shards();
    s.shard_sizes = sizes_;
    s.shard_owners = dir_.owners();
    return s;
  }

  // Test support: the full multiset, one kFetchShard per shard. Must be
  // serialised with writes (the facade's writer mutex) for a consistent
  // cut.
  std::vector<point_t> flatten() {
    std::vector<point_t> out;
    for (std::size_t i = 0; i < dir_.num_shards(); ++i) {
      auto [pts, version, origin] = fetch_shard(dir_.key_of(i),
                                                dir_.owner_of(i));
      (void)version;
      (void)origin;
      out.insert(out.end(), pts.begin(), pts.end());
    }
    return out;
  }

  const std::vector<NodeId>& nodes() const { return nodes_; }

  // After all hosts checkpoint, their WALs hold nothing below the new
  // manifests — the marker cut is re-derivable as "everything", so the
  // marker log itself can be reset. Facade calls this LAST in
  // checkpoint_all().
  void truncate_marker_log() {
    if (!marker_wal_.is_open()) return;
    marker_wal_.truncate_below(marker_wal_.rotate());
  }

  // Host-death handling: `dead` is gone (its transport binding included).
  // Recover its shards from its durability directory — checkpoint + WAL
  // tail, cut at the last coordinator marker — and re-install them on the
  // surviving nodes round-robin. Shards whose data did not survive (never
  // checkpointed, log lost) come back empty rather than wedging the
  // topology. Externally serialised with writes, like every mutation here.
  void recover_host(
      NodeId dead, const std::string& dead_dir,
      const psi::durability::ArenaDecoder<Coord, D>& decoder = nullptr) {
    const std::uint64_t cut =
        marker_wal_.is_open()
            ? psi::durability::last_marker(cfg_.durability.dir + "/coordinator")
            : std::numeric_limits<std::uint64_t>::max();
    // Arena-checkpointed shards with a clean WAL tail come back as raw
    // images and re-install with one validate + adopt on the destination;
    // a dirty tail materialises them through `decoder` (facade-provided)
    // and takes the point path below.
    auto rec = psi::durability::recover<Coord, D>(dead_dir, cut, decoder);
    nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), dead),
                 nodes_.end());
    if (nodes_.empty()) {
      throw TransportError("recover_host: no surviving nodes");
    }
    std::size_t rr = 0;
    for (std::size_t i = 0; i < dir_.num_shards(); ++i) {
      if (dir_.owner_of(i) != dead) continue;
      const std::uint64_t key = dir_.key_of(i);
      const auto it = std::find_if(
          rec.shards.begin(), rec.shards.end(),
          [&](const auto& s) { return s.key == key; });
      const NodeId dest = nodes_[rr++ % nodes_.size()];
      if (it != rec.shards.end() && !it->image.empty()) {
        sizes_[i] = install_arena(key, dir_.version_of(i),
                                  static_cast<std::size_t>(it->factory_id),
                                  it->image, dest);
      } else if (it != rec.shards.end()) {
        install_raw(key, dir_.version_of(i),
                    static_cast<std::size_t>(it->factory_id), it->pts, dest);
        sizes_[i] = it->pts.size();
      } else {
        install_raw(key, dir_.version_of(i), i, {}, dest);
        sizes_[i] = 0;
      }
      dir_.move_owner(i, dest);
    }
    publish();
  }

  // Persist the routing state that pairs with the hosts' freshly written
  // manifests (see durability::Topology). Facade calls this at the end of
  // every full checkpoint; a no-op without durability.
  void save_topology() {
    if (!marker_wal_.is_open()) return;
    psi::durability::Topology t;
    t.epoch = epoch_.current();
    t.shards.reserve(dir_.num_shards());
    for (std::size_t i = 0; i < dir_.num_shards(); ++i) {
      psi::durability::TopologyShard s;
      s.key = dir_.key_of(i);
      s.upper = dir_.map().upper_bound_of(i);
      s.version = dir_.version_of(i);
      s.owner = dir_.owner_of(i);
      t.shards.push_back(s);
    }
    psi::durability::write_topology(cfg_.durability.dir + "/coordinator", t,
                                    cfg_.durability.fsync);
  }

  // Clean-restart fast path: re-install a checkpointed topology verbatim.
  // `best` holds the deduped recovered shards (key -> contents); entries
  // still carrying an arena image install with one validate + adopt on
  // their recorded owner — no decode, no global re-sort, no rebuild.
  //
  // Returns false — leaving the coordinator untouched, caller falls back
  // to the bulk-load path — unless the record and the recovered shards
  // agree exactly: every topology shard present in `best` at the exact
  // checkpointed version and nothing else recovered, bounds well-formed,
  // every owner alive. Anything short of that means the directory state
  // moved past the topology record (crash mid-checkpoint, WAL tail, a
  // node's stale manifest) and only the union semantics of the slow path
  // are safe.
  bool restore_topology(
      const psi::durability::Topology& topo,
      std::map<std::uint64_t, psi::durability::RecoveredShard<Coord, D>>&
          best,
      const psi::durability::ArenaDecoder<Coord, D>& decoder) {
    const std::size_t k = topo.shards.size();
    if (k == 0 || best.size() != k) return false;
    std::vector<std::uint64_t> uppers(k), keys(k), versions(k);
    std::vector<NodeId> owners(k);
    for (std::size_t i = 0; i < k; ++i) {
      const auto& s = topo.shards[i];
      if (i > 0 && s.upper <= uppers[i - 1]) return false;
      uppers[i] = s.upper;
      keys[i] = s.key;
      versions[i] = s.version;
      owners[i] = static_cast<NodeId>(s.owner);
      if (std::find(nodes_.begin(), nodes_.end(), owners[i]) ==
          nodes_.end()) {
        return false;
      }
      const auto it = best.find(s.key);
      if (it == best.end() || it->second.version != s.version) return false;
    }
    if (uppers.back() != ~std::uint64_t{0}) return false;
    // The constructor's placeholder shards go away after the restored
    // route is published (mirrors load()) — except where a restored shard
    // reuses a placeholder's (key, owner): both id allocators start at 1,
    // so a pre-restart key can collide with a fresh placeholder key, and
    // the install above already replaced that slot in place. Dropping it
    // would delete the restored data.
    const auto old_keys = dir_.keys();
    const auto old_owners = dir_.owners();
    dir_.restore(map_t::from_bounds(uppers), keys, versions, owners);
    sizes_.assign(k, 0);
    for (std::size_t i = 0; i < k; ++i) {
      auto& rec = best.find(keys[i])->second;
      const auto fid = static_cast<std::size_t>(rec.factory_id);
      if (!rec.image.empty()) {
        try {
          sizes_[i] =
              install_arena(keys[i], versions[i], fid, rec.image, owners[i]);
          continue;
        } catch (const TransportError&) {
          // Destination refused the image (builder parameters changed
          // across the restart, say): materialize and take the point path.
          if (!decoder) throw;
          rec.pts = decoder(rec.factory_id, rec.image);
        }
      }
      install_raw(keys[i], versions[i], fid, rec.pts, owners[i]);
      sizes_[i] = rec.pts.size();
    }
    publish();
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      bool survived = false;
      for (std::size_t j = 0; j < k; ++j) {
        if (keys[j] == old_keys[i] && owners[j] == old_owners[i]) {
          survived = true;
          break;
        }
      }
      if (!survived) drop_shard_key(old_keys[i], old_owners[i]);
    }
    return true;
  }

 private:
  void place_round_robin() {
    for (std::size_t i = 0; i < dir_.num_shards(); ++i) {
      dir_.move_owner(i, nodes_[i % nodes_.size()]);
    }
  }

  // Ship `pts` as shard i to `node` under shard i's current identity.
  void install_shard(std::size_t i, NodeId node,
                     const std::vector<point_t>& pts) {
    install_raw(dir_.key_of(i), dir_.version_of(i), i, pts, node);
  }

  void install_raw(std::uint64_t key, std::uint64_t version,
                   std::size_t factory_id, const std::vector<point_t>& pts,
                   NodeId node) {
    PSI_TRACE_SPAN("rpc.install");
    WireWriter w;
    w.put_u64(key);
    w.put_u64(version);
    w.put_u64(factory_id);
    w.put_u8(kShardFormatPoints);
    w.put_points(pts);
    expect_ok(transport_.call(node, std::move(w).finish(MsgType::kInstallShard)),
              "install");
  }

  // Raw-arena install (v4): ship a serialized arena image instead of
  // points. The destination validates the CRC frame and the builder
  // fingerprint before adopting, so a mismatched backend configuration
  // across nodes fails the call loudly instead of installing garbage.
  // Returns the adopted shard's cardinality (from the install ack — the
  // image is opaque here).
  std::size_t install_arena(std::uint64_t key, std::uint64_t version,
                            std::size_t factory_id,
                            const std::vector<std::uint8_t>& image,
                            NodeId node) {
    PSI_TRACE_SPAN("rpc.install");
    WireWriter w;
    w.put_u64(key);
    w.put_u64(version);
    w.put_u64(factory_id);
    w.put_u8(kShardFormatArena);
    w.put_blob(image);
    Message reply = expect_ok(
        transport_.call(node, std::move(w).finish(MsgType::kInstallShard)),
        "install");
    WireReader r(reply);
    return static_cast<std::size_t>(r.get_u64());
  }

  // One fetched shard in whichever encoding the host chose. Exactly one of
  // pts/image is meaningful, selected by is_arena.
  struct FetchedShard {
    bool is_arena = false;
    std::vector<point_t> pts;
    std::vector<std::uint8_t> image;
    std::uint64_t version = 0;
    std::size_t origin = 0;
  };

  FetchedShard fetch_shard_any(std::uint64_t key, NodeId node,
                               bool allow_raw) {
    PSI_TRACE_SPAN("rpc.fetch");
    WireWriter w;
    w.put_u64(key);
    w.put_u8(allow_raw ? 1 : 0);
    Message reply = expect_ok(
        transport_.call(node, std::move(w).finish(MsgType::kFetchShard)),
        "fetch");
    WireReader r(reply);
    (void)r.get_u64();  // echoed key
    FetchedShard out;
    out.version = r.get_u64();
    out.origin = static_cast<std::size_t>(r.get_u64());
    const std::uint8_t format = r.get_u8();
    if (format == kShardFormatArena) {
      if (!allow_raw) throw WireError("fetch: unsolicited arena image");
      out.is_arena = true;
      out.image = r.get_blob();
    } else if (format == kShardFormatPoints) {
      out.pts = r.template get_points<Coord, D>();
    } else {
      throw WireError("fetch: unknown shard format " +
                      std::to_string(format));
    }
    return out;
  }

  // Point-wise fetch: split/merge/flatten/recovery need the points
  // themselves, so they never ask for the raw encoding.
  std::tuple<std::vector<point_t>, std::uint64_t, std::size_t> fetch_shard(
      std::uint64_t key, NodeId node) {
    FetchedShard f = fetch_shard_any(key, node, /*allow_raw=*/false);
    return {std::move(f.pts), f.version, f.origin};
  }

  void drop_shard_key(std::uint64_t key, NodeId node) {
    WireWriter w;
    w.put_u64(key);
    expect_ok(transport_.call(node, std::move(w).finish(MsgType::kDropShard)),
              "drop");
  }

  // Split / merge / node-balance — the bp-forest seat discipline, with
  // data movement over the transport instead of pointer swaps.
  void rebalance() {
    for (std::size_t i = 0; i < dir_.num_shards();) {
      if (sizes_[i] > cfg_.split_threshold &&
          dir_.num_shards() < cfg_.max_shards && splittable(i)) {
        if (split_shard(i)) {
          ++stats_.splits;
          continue;  // re-examine the left half
        }
        // One giant equal-code run: remember the size so the next commits
        // don't re-fetch and re-sort the whole shard over the wire until
        // its population actually changes (the in-process writer's
        // unsplittable_at memo, keyed by stable shard key here).
        unsplittable_at_[dir_.key_of(i)] = sizes_[i];
      }
      ++i;
    }
    const std::size_t merge_at = cfg_.effective_merge_threshold();
    const std::size_t min_shards = cfg_.effective_min_shards();
    for (std::size_t i = 0; i + 1 < dir_.num_shards();) {
      if (sizes_[i] + sizes_[i + 1] < merge_at &&
          dir_.num_shards() > min_shards) {
        merge_shards(i);
        ++stats_.merges;
        continue;
      }
      ++i;
    }
    if (cfg_.balance_nodes) balance_nodes();
  }

  bool splittable(std::size_t i) const {
    const auto it = unsplittable_at_.find(dir_.key_of(i));
    return it == unsplittable_at_.end() || it->second != sizes_[i];
  }

  bool split_shard(std::size_t i) {
    const NodeId owner = dir_.owner_of(i);
    const std::uint64_t old_key = dir_.key_of(i);
    auto [pts, version, origin] = fetch_shard(old_key, owner);
    (void)version;
    std::vector<service::CodedPoint<point_t>> coded =
        service::code_and_sort<Codec>(pts);
    const auto cut = service::split_position(coded);
    if (!cut) return false;
    const auto [mid, boundary] = *cut;
    if (!dir_.split(i, boundary)) return false;
    std::vector<point_t> left, right;
    left.reserve(mid);
    right.reserve(coded.size() - mid);
    for (std::size_t j = 0; j < mid; ++j) left.push_back(coded[j].pt);
    for (std::size_t j = mid; j < coded.size(); ++j) {
      right.push_back(coded[j].pt);
    }
    sizes_[i] = left.size();
    sizes_.insert(sizes_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  right.size());
    // Both halves stay on the owner (splits never move data between nodes
    // on their own — balance_nodes migrates whole shards afterwards).
    install_raw(dir_.key_of(i), dir_.version_of(i), origin, left, owner);
    install_raw(dir_.key_of(i + 1), dir_.version_of(i + 1), origin, right,
                owner);
    publish();
    drop_shard_key(old_key, owner);
    return true;
  }

  void merge_shards(std::size_t i) {
    const NodeId left_owner = dir_.owner_of(i);
    const NodeId right_owner = dir_.owner_of(i + 1);
    const std::uint64_t left_key = dir_.key_of(i);
    const std::uint64_t right_key = dir_.key_of(i + 1);
    auto [pts, lv, origin] = fetch_shard(left_key, left_owner);
    (void)lv;
    auto [rhs, rv, rorigin] = fetch_shard(right_key, right_owner);
    (void)rv;
    (void)rorigin;
    pts.reserve(pts.size() + rhs.size());
    pts.insert(pts.end(), rhs.begin(), rhs.end());
    dir_.merge(i, left_owner);
    sizes_[i] = pts.size();
    sizes_.erase(sizes_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    // A cross-node merge is an implicit handoff of the right half.
    install_raw(dir_.key_of(i), dir_.version_of(i), origin, pts, left_owner);
    publish();
    drop_shard_key(left_key, left_owner);
    drop_shard_key(right_key, right_owner);
  }

  // Even out per-node shard counts: migrate one shard at a time from the
  // most to the least loaded node until they differ by at most one.
  void balance_nodes() {
    if (nodes_.size() < 2) return;
    for (;;) {
      std::vector<std::size_t> counts(nodes_.size(), 0);
      for (std::size_t i = 0; i < dir_.num_shards(); ++i) {
        const auto it =
            std::find(nodes_.begin(), nodes_.end(), dir_.owner_of(i));
        counts[static_cast<std::size_t>(it - nodes_.begin())]++;
      }
      const auto max_it = std::max_element(counts.begin(), counts.end());
      const auto min_it = std::min_element(counts.begin(), counts.end());
      if (*max_it <= *min_it + 1) return;
      const NodeId from = nodes_[static_cast<std::size_t>(
          max_it - counts.begin())];
      const NodeId to = nodes_[static_cast<std::size_t>(
          min_it - counts.begin())];
      // Move the smallest shard of the overloaded node: least data shipped.
      std::size_t pick = dir_.num_shards();
      for (std::size_t i = 0; i < dir_.num_shards(); ++i) {
        if (dir_.owner_of(i) != from) continue;
        if (pick == dir_.num_shards() || sizes_[i] < sizes_[pick]) pick = i;
      }
      if (pick == dir_.num_shards()) return;
      migrate(pick, to);
    }
  }

  std::uint64_t publish() {
    auto v = std::make_shared<route_t>();
    const std::uint64_t next = epoch_.current() + 1;
    v->epoch = next;
    v->stamp = dir_.stamp();
    v->map = dir_.map();
    v->keys = dir_.keys();
    v->versions = dir_.versions();
    v->owners = dir_.owners();
    for (std::size_t s : sizes_) v->total_points += s;
    retained_routes_.retain(next, v);
    route_slot_.publish(std::move(v));
    epoch_.advance();
    return next;
  }

  Transport& transport_;
  std::vector<NodeId> nodes_;
  DistributedConfig cfg_;
  service::ShardDirectory<Coord, D, Codec> dir_;
  std::vector<std::size_t> sizes_;  // last acked per-shard populations
  // Shard key -> size at which its last split attempt failed (single
  // equal-code run); stale keys are harmless (splits/merges re-key).
  std::map<std::uint64_t, std::size_t> unsplittable_at_;
  service::EpochCounter epoch_;
  service::SnapshotSlot<route_t> route_slot_;
  service::RetainedViews<route_t> retained_routes_;
  CoordinatorStats stats_;
  // Durability: the commit-cut marker log (see ctor comment).
  psi::durability::WalWriter marker_wal_;
};

}  // namespace psi::net
