// PSI-Lib net layer: the wire format.
//
// Length-prefixed binary frames carrying one message each:
//
//   [u32 frame_len] [u16 magic "PW"] [u16 version] [u8 type] [payload...]
//
// frame_len counts everything after the length word. The magic+version
// pair is checked on every frame so a node never misinterprets a peer
// running a different protocol revision: decoding fails loudly (WireError)
// instead of producing garbage shard data. Bump kWireVersion whenever a
// message's payload layout changes — there is no in-band negotiation, the
// deployment upgrades atomically (README "Distributed deployment" notes).
//
// All integers are little-endian, written byte-by-byte so the format is
// independent of host endianness and alignment. Coordinates serialise as
// their 64-bit pattern: two's-complement for integral Coord, IEEE-754 bits
// for floating Coord. A reader and writer must agree on Coord/D (they are
// two ends of the same templated service type).
//
// The codec is deliberately allocation-light: WireWriter appends to one
// growing buffer that becomes the Message payload; WireReader is a
// non-owning cursor over the received bytes with bounds checks on every
// read.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"
#include "psi/service/shard_store.h"
#include "psi/telemetry/histogram.h"

namespace psi::net {

inline constexpr std::uint16_t kWireMagic = 0x5057;  // "PW"
// v2: kTelemetry/kTelemetryReply (cluster-wide stats aggregation).
// v3: pinned-epoch reads (kQuery carries consistency + per-shard pinned
//     versions, kQueryResult a retired-key list) and streamed list replies
//     (kQueryChunk/kQueryDone/kQueryCredit, credit-based backpressure).
// v4: raw-arena shard transfer — kFetchShard gains an allow_raw flag;
//     kShardData and kInstallShard carry a format byte after factory_id
//     (kShardFormatPoints = point-wise codec, kShardFormatArena =
//     length-prefixed, CRC-framed arena image; chunk_pool.h).
inline constexpr std::uint16_t kWireVersion = 4;

// One message kind per request/response the distributed service speaks.
enum class MsgType : std::uint8_t {
  kOk = 0,           // generic ack: payload depends on the request
  kError = 1,        // payload: string (diagnostic)
  kCommitBatch = 2,  // coordinator -> host: per-shard update runs
  kCommitAck = 3,    // host -> coordinator: new per-shard sizes
  kQuery = 4,        // client -> host: range/ball/knn over listed shards
  kQueryResult = 5,  // host -> client: points/count + version piggyback
  kFetchShard = 6,   // coordinator -> host: flatten one shard
  kShardData = 7,    // host -> coordinator: the flattened points
  kInstallShard = 8, // coordinator -> host: adopt a shard (load/split/handoff)
  kDropShard = 9,    // coordinator -> host: release a shard after handoff
  kStat = 10,        // client -> host: sizes of hosted shards
  kStatReply = 11,
  kTelemetry = 12,   // client -> host: read/stage histograms + shard heat
  kTelemetryReply = 13,
  // Streamed list replies (v3). A streamed kQuery answers with zero or
  // more kQueryChunk frames (each a bounded batch of points) followed by
  // exactly one kQueryDone carrying the version piggyback and the stream
  // totals — the end-of-stream marker. kQueryCredit flows the other way:
  // the client grants the host permission to send more chunks (see
  // transport.h for the credit protocol).
  kQueryChunk = 14,   // host -> client: [points] (put_points)
  kQueryDone = 15,    // host -> client: piggyback + totals (see node.h)
  kQueryCredit = 16,  // client -> host: [u32 chunks granted]
};

// True for the intermediate frames of a streamed reply — everything else
// terminates a call. The transport layer keys its read loop on this.
inline constexpr bool is_stream_chunk(MsgType t) {
  return t == MsgType::kQueryChunk;
}

// Streaming defaults: chunk granularity (points per kQueryChunk — bounds
// the host's per-reply buffering) and the initial credit window (chunks in
// flight before the host must wait for a kQueryCredit grant).
inline constexpr std::uint32_t kDefaultStreamChunkPoints = 8192;
inline constexpr std::uint32_t kDefaultStreamCredit = 4;

// kQuery flag bits (v3).
inline constexpr std::uint8_t kQueryFlagPinned = 1;  // versions are pinned
inline constexpr std::uint8_t kQueryFlagStream = 2;  // chunked list reply

// Shard payload formats (v4): the byte after factory_id in kShardData and
// kInstallShard selects how the shard's contents are encoded.
inline constexpr std::uint8_t kShardFormatPoints = 0;  // put_points codec
inline constexpr std::uint8_t kShardFormatArena = 1;   // put_blob arena image

// Query kinds inside a kQuery payload.
enum class QueryKind : std::uint8_t {
  kRangeList = 0,
  kRangeCount = 1,
  kBallList = 2,
  kBallCount = 3,
  kKnn = 4,
};

struct WireError : std::runtime_error {
  explicit WireError(const std::string& what)
      : std::runtime_error("wire: " + what) {}
};

// A decoded message: type tag + owned payload bytes. `offset` is where the
// payload begins inside `bytes` — a frame decoded off the wire keeps its
// 5-byte prelude in the buffer instead of memmoving the (possibly
// shard-sized) payload left; locally built messages use offset 0.
struct Message {
  MsgType type = MsgType::kOk;
  std::vector<std::uint8_t> bytes;
  std::size_t offset = 0;

  std::size_t payload_size() const { return bytes.size() - offset; }
  const std::uint8_t* payload_data() const { return bytes.data() + offset; }
};

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  template <typename Coord>
  void put_coord(Coord c) {
    if constexpr (std::is_floating_point_v<Coord>) {
      put_f64(static_cast<double>(c));
    } else {
      put_u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(c)));
    }
  }

  template <typename Coord, int D>
  void put_point(const Point<Coord, D>& p) {
    for (int d = 0; d < D; ++d) put_coord(p[d]);
  }

  template <typename Coord, int D>
  void put_box(const Box<Coord, D>& b) {
    put_point(b.lo);
    put_point(b.hi);
  }

  template <typename Coord, int D>
  void put_points(const std::vector<Point<Coord, D>>& pts) {
    put_u64(pts.size());
    for (const auto& p : pts) put_point(p);
  }

  template <typename PointT>
  void put_runs(const std::vector<service::OpRun<PointT>>& runs) {
    put_u32(static_cast<std::uint32_t>(runs.size()));
    for (const auto& r : runs) {
      put_u8(r.is_delete ? 1 : 0);
      put_points(r.pts);
    }
  }

  // Histogram snapshot, sparse: [u64 count][u64 sum][u64 max][u32 n]
  // then n (u8 bucket, u64 count) pairs for the non-empty buckets — a
  // log2 histogram is dense in a handful of buckets and empty elsewhere.
  void put_histogram(const telemetry::HistogramSnapshot& h) {
    put_u64(h.count);
    put_u64(h.sum);
    put_u64(h.max);
    std::uint32_t n = 0;
    for (std::size_t b = 0; b < telemetry::kNumBuckets; ++b) {
      if (h.buckets[b] != 0) ++n;
    }
    put_u32(n);
    for (std::size_t b = 0; b < telemetry::kNumBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      put_u8(static_cast<std::uint8_t>(b));
      put_u64(h.buckets[b]);
    }
  }

  // Length-prefixed opaque bytes (v4): arena images ride the wire as one
  // blob; any internal structure (header, CRC) is the producer's business.
  void put_blob(const std::vector<std::uint8_t>& b) {
    put_u64(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    // Byte loop, not insert(begin, end): GCC 12's -Wstringop-overflow
    // misfires on the iterator-range insert at -O3, and strings on this
    // path are short diagnostics.
    for (const char c : s) buf_.push_back(static_cast<std::uint8_t>(c));
  }

  Message finish(MsgType type) && {
    return Message{type, std::move(buf_)};
  }

 private:
  std::vector<std::uint8_t> buf_;
};

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

class WireReader {
 public:
  explicit WireReader(const Message& m)
      : data_(m.payload_data()), size_(m.payload_size()) {}
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t get_u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  template <typename Coord>
  Coord get_coord() {
    if constexpr (std::is_floating_point_v<Coord>) {
      return static_cast<Coord>(get_f64());
    } else {
      return static_cast<Coord>(static_cast<std::int64_t>(get_u64()));
    }
  }

  template <typename Coord, int D>
  Point<Coord, D> get_point() {
    Point<Coord, D> p;
    for (int d = 0; d < D; ++d) p[d] = get_coord<Coord>();
    return p;
  }

  template <typename Coord, int D>
  Box<Coord, D> get_box() {
    Box<Coord, D> b;
    b.lo = get_point<Coord, D>();
    b.hi = get_point<Coord, D>();
    return b;
  }

  template <typename Coord, int D>
  std::vector<Point<Coord, D>> get_points() {
    const std::uint64_t n = get_u64();
    // Each point occupies 8*D payload bytes: reject counts the remaining
    // bytes cannot back before allocating (a corrupt frame must not
    // trigger a huge allocation).
    const std::size_t per = static_cast<std::size_t>(D) * 8;
    if (n > remaining() / per) {
      throw WireError("point count exceeds frame payload");
    }
    std::vector<Point<Coord, D>> pts(static_cast<std::size_t>(n));
    for (auto& p : pts) p = get_point<Coord, D>();
    return pts;
  }

  template <typename PointT>
  std::vector<service::OpRun<PointT>> get_runs() {
    const std::uint32_t n = get_u32();
    // Each run occupies at least 9 payload bytes (u8 kind + u64 count):
    // reject counts the frame cannot back before reserving.
    if (n > remaining() / 9) {
      throw WireError("run count exceeds frame payload");
    }
    std::vector<service::OpRun<PointT>> runs;
    runs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      service::OpRun<PointT> r;
      r.is_delete = get_u8() != 0;
      r.pts = get_points<typename PointT::coord_t, PointT::kDim>();
      runs.push_back(std::move(r));
    }
    return runs;
  }

  telemetry::HistogramSnapshot get_histogram() {
    telemetry::HistogramSnapshot h;
    h.count = get_u64();
    h.sum = get_u64();
    h.max = get_u64();
    const std::uint32_t n = get_u32();
    // Each pair occupies 9 payload bytes; reject counts the frame cannot
    // back, and bucket ids outside the histogram.
    if (n > remaining() / 9) {
      throw WireError("histogram bucket count exceeds frame payload");
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint8_t b = get_u8();
      if (b >= telemetry::kNumBuckets) {
        throw WireError("histogram bucket index out of range");
      }
      h.buckets[b] = get_u64();
    }
    return h;
  }

  std::vector<std::uint8_t> get_blob() {
    const std::uint64_t n = get_u64();
    // Bounds check before the allocation, like get_points: a corrupt
    // length word must not trigger a huge reserve.
    if (n > remaining()) throw WireError("blob length exceeds frame payload");
    std::vector<std::uint8_t> b(data_ + pos_,
                                data_ + pos_ + static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return b;
  }

  std::string get_string() {
    const std::uint32_t n = get_u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw WireError("truncated frame");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

inline constexpr std::size_t kFrameHeaderBytes = 4;  // the length word
inline constexpr std::size_t kFramePreludeBytes = 5; // magic+version+type
// One frame must fit in memory twice (encode + socket buffer); 1 GiB is
// far above any shard ship and low enough to reject corrupt length words.
inline constexpr std::uint32_t kMaxFrameBytes = std::uint32_t{1} << 30;

// Serialise `m` into a self-delimiting byte frame.
inline std::vector<std::uint8_t> encode_frame(const Message& m) {
  const std::size_t body = kFramePreludeBytes + m.payload_size();
  if (body > kMaxFrameBytes) throw WireError("frame too large to encode");
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + body);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(body >> (8 * i)));
  }
  out.push_back(static_cast<std::uint8_t>(kWireMagic));
  out.push_back(static_cast<std::uint8_t>(kWireMagic >> 8));
  out.push_back(static_cast<std::uint8_t>(kWireVersion));
  out.push_back(static_cast<std::uint8_t>(kWireVersion >> 8));
  out.push_back(static_cast<std::uint8_t>(m.type));
  out.insert(out.end(), m.payload_data(), m.payload_data() + m.payload_size());
  return out;
}

// Decode one frame body (the bytes after the length word) into a Message,
// verifying magic and version. The payload is not copied or moved — the
// Message adopts the buffer and marks where the payload starts.
inline Message decode_frame_body(std::vector<std::uint8_t> body) {
  if (body.size() < kFramePreludeBytes) throw WireError("short frame");
  WireReader r(body.data(), kFramePreludeBytes);
  const std::uint16_t magic = r.get_u16();
  const std::uint16_t version = r.get_u16();
  if (magic != kWireMagic) throw WireError("bad magic");
  if (version != kWireVersion) {
    throw WireError("protocol version mismatch: peer speaks v" +
                    std::to_string(version) + ", this build speaks v" +
                    std::to_string(kWireVersion));
  }
  Message m;
  m.type = static_cast<MsgType>(body[4]);
  m.bytes = std::move(body);
  m.offset = kFramePreludeBytes;
  return m;
}

// Convenience: an error reply.
inline Message make_error(const std::string& what) {
  WireWriter w;
  w.put_string(what);
  return std::move(w).finish(MsgType::kError);
}

// Raise the payload of a kError reply as a WireError; pass anything else
// through.
inline Message expect_ok(Message m, const char* context) {
  if (m.type == MsgType::kError) {
    WireReader r(m);
    throw WireError(std::string(context) + ": peer error: " + r.get_string());
  }
  return m;
}

}  // namespace psi::net
