#include "psi/datagen/generators.h"

#include <cmath>

namespace psi::datagen {

namespace {

// Approximate a unit normal from two uniform draws (Box-Muller).
double normal01(const psi::Rng& rng, std::uint64_t i) {
  const double u1 = std::max(rng.ith_double(2 * i), 1e-12);
  const double u2 = rng.ith_double(2 * i + 1);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.141592653589793 * u2);
}

std::int64_t clampc(double v, std::int64_t coord_max) {
  if (v < 0) return 0;
  if (v > static_cast<double>(coord_max)) return coord_max;
  return static_cast<std::int64_t>(v);
}

}  // namespace

std::vector<Point2> osm_sim(std::size_t n, std::uint64_t seed,
                            std::int64_t coord_max) {
  // 60% city clusters (Gaussian blobs of varying scale), 30% road corridors
  // (points jittered around random line segments), 10% uniform background.
  const std::size_t num_cities = 64;
  const std::size_t num_roads = 128;
  Rng city_rng(hash64(seed, 1));
  Rng road_rng(hash64(seed, 2));
  Rng pick_rng(hash64(seed, 3));

  struct City {
    double cx, cy, sigma;
  };
  struct Road {
    double x0, y0, x1, y1, width;
  };
  std::vector<City> cities(num_cities);
  for (std::size_t c = 0; c < num_cities; ++c) {
    cities[c].cx = city_rng.ith_double(3 * c) * static_cast<double>(coord_max);
    cities[c].cy = city_rng.ith_double(3 * c + 1) * static_cast<double>(coord_max);
    // City radii span two orders of magnitude (multi-scale clustering).
    cities[c].sigma = static_cast<double>(coord_max) *
                      std::pow(10.0, -4.0 + 2.0 * city_rng.ith_double(3 * c + 2));
  }
  std::vector<Road> roads(num_roads);
  for (std::size_t r = 0; r < num_roads; ++r) {
    // Roads connect two random cities.
    const City& a = cities[road_rng.ith_bounded(5 * r, num_cities)];
    const City& b = cities[road_rng.ith_bounded(5 * r + 1, num_cities)];
    roads[r] = Road{a.cx, a.cy, b.cx, b.cy,
                    static_cast<double>(coord_max) * 2e-5};
  }

  std::vector<Point2> pts(n);
  parallel_for(0, n, [&](std::size_t i) {
    Rng prng = pick_rng.split(i);
    const std::uint64_t kind = prng.ith_bounded(0, 10);
    double x, y;
    if (kind < 6) {  // city point
      const City& c = cities[prng.ith_bounded(1, num_cities)];
      x = c.cx + normal01(prng, 1) * c.sigma;
      y = c.cy + normal01(prng, 2) * c.sigma;
    } else if (kind < 9) {  // road point
      const Road& r = roads[prng.ith_bounded(2, num_roads)];
      const double t = prng.ith_double(7);
      x = r.x0 + t * (r.x1 - r.x0) + normal01(prng, 3) * r.width;
      y = r.y0 + t * (r.y1 - r.y0) + normal01(prng, 4) * r.width;
    } else {  // background
      x = prng.ith_double(11) * static_cast<double>(coord_max);
      y = prng.ith_double(12) * static_cast<double>(coord_max);
    }
    pts[i] = Point2{{clampc(x, coord_max), clampc(y, coord_max)}};
  });
  return pts;
}

std::vector<Point3> cosmo_sim(std::size_t n, std::uint64_t seed,
                              std::int64_t coord_max) {
  // Mixture of Plummer spheres: density ~ (1 + (r/a)^2)^{-5/2}. Sampling the
  // Plummer radial profile: r = a / sqrt(u^{-2/3} - 1) for u uniform (0,1].
  const std::size_t num_halos = 256;
  Rng halo_rng(hash64(seed, 11));
  struct Halo {
    double cx, cy, cz, a;
  };
  std::vector<Halo> halos(num_halos);
  for (std::size_t h = 0; h < num_halos; ++h) {
    halos[h].cx = halo_rng.ith_double(4 * h) * static_cast<double>(coord_max);
    halos[h].cy = halo_rng.ith_double(4 * h + 1) * static_cast<double>(coord_max);
    halos[h].cz = halo_rng.ith_double(4 * h + 2) * static_cast<double>(coord_max);
    halos[h].a = static_cast<double>(coord_max) *
                 std::pow(10.0, -3.5 + 1.5 * halo_rng.ith_double(4 * h + 3));
  }

  Rng pick_rng(hash64(seed, 12));
  std::vector<Point3> pts(n);
  parallel_for(0, n, [&](std::size_t i) {
    Rng prng = pick_rng.split(i);
    double x, y, z;
    if (prng.ith_bounded(0, 20) == 0) {  // 5% smooth background
      x = prng.ith_double(21) * static_cast<double>(coord_max);
      y = prng.ith_double(22) * static_cast<double>(coord_max);
      z = prng.ith_double(23) * static_cast<double>(coord_max);
    } else {
      const Halo& h = halos[prng.ith_bounded(1, num_halos)];
      const double u = std::max(prng.ith_double(2), 1e-9);
      const double r = h.a / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0 + 1e-12);
      // Uniform direction on the sphere.
      const double cos_t = 2.0 * prng.ith_double(3) - 1.0;
      const double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
      const double phi = 2.0 * 3.141592653589793 * prng.ith_double(4);
      x = h.cx + r * sin_t * std::cos(phi);
      y = h.cy + r * sin_t * std::sin(phi);
      z = h.cz + r * cos_t;
    }
    pts[i] = Point3{{clampc(x, coord_max), clampc(y, coord_max),
                     clampc(z, coord_max)}};
  });
  return pts;
}

}  // namespace psi::datagen
