// PSI-Lib: synthetic dataset and query generators (paper Sec 5.1 + Sec F).
//
// Distributions:
//  * uniform    — each point uniform in [0, coord_max]^D.
//  * sweepline  — uniform data sorted along dimension 0; used to *feed
//                 batches in sweep order*, simulating spatially local update
//                 patterns (skewed update pattern, not skewed data).
//  * varden     — random walk with a low restart probability (Gan & Tao);
//                 produces tight clusters far apart (skewed distribution).
//  * osm_sim    — substitute for the OpenStreetMap dataset: 2D mixture of
//                 dense city clusters, polyline road corridors, and sparse
//                 background (multi-scale clustering along networks).
//  * cosmo_sim  — substitute for the COSMO dataset: 3D Plummer-like sphere
//                 mixture (heavy clustering in 3D).
//
// Query generators:
//  * in-distribution (InD) queries: existing data points with small jitter.
//  * out-of-distribution (OOD) queries: uniform over the bounding space.
//  * range boxes with target side lengths, centred on InD/OOD anchors.
//
// All generators are deterministic in (seed, n) and run in parallel via
// counter-based hashing — no sequential RNG state.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "psi/geometry/box.h"
#include "psi/geometry/point.h"
#include "psi/parallel/primitives.h"
#include "psi/parallel/random.h"
#include "psi/parallel/scheduler.h"
#include "psi/parallel/sort.h"

namespace psi::datagen {

inline constexpr std::int64_t kDefaultMax2D = 1'000'000'000;  // [0, 10^9], Sec 5.1
inline constexpr std::int64_t kDefaultMax3D = 1'000'000;      // [0, 10^6], Sec E

// ---------------------------------------------------------------------------
// Core distributions (templated over dimension)
// ---------------------------------------------------------------------------

template <int D>
std::vector<Point<std::int64_t, D>> uniform(std::size_t n, std::uint64_t seed,
                                            std::int64_t coord_max) {
  using P = Point<std::int64_t, D>;
  Rng rng(seed);
  return tabulate<P>(n, [&](std::size_t i) {
    P p;
    for (int d = 0; d < D; ++d) {
      p[d] = static_cast<std::int64_t>(rng.ith_bounded(
          i * static_cast<std::uint64_t>(D) + static_cast<std::uint64_t>(d),
          static_cast<std::uint64_t>(coord_max) + 1));
    }
    return p;
  });
}

template <int D>
std::vector<Point<std::int64_t, D>> sweepline(std::size_t n, std::uint64_t seed,
                                              std::int64_t coord_max) {
  auto pts = uniform<D>(n, seed, coord_max);
  sample_sort(pts, [](const auto& a, const auto& b) { return a[0] < b[0]; });
  return pts;
}

// Varden: segments of a bounded random walk. Each restart jumps to a uniform
// position; within a segment, steps are small uniform offsets, so points form
// tight clusters with large empty gaps between clusters.
template <int D>
std::vector<Point<std::int64_t, D>> varden(std::size_t n, std::uint64_t seed,
                                           std::int64_t coord_max,
                                           double restart_prob = 1e-4) {
  using P = Point<std::int64_t, D>;
  std::vector<P> pts(n);
  if (n == 0) return pts;
  // Expected segment length 1/restart_prob; generate segments independently
  // in parallel (each segment is a deterministic walk from its own seed).
  const std::size_t seg_len = std::max<std::size_t>(
      1, static_cast<std::size_t>(1.0 / restart_prob));
  const std::size_t num_segs = (n + seg_len - 1) / seg_len;
  // Step size chosen so a full segment stays in a region ~1e-3 of the space:
  // clusters are small relative to inter-cluster distances.
  const std::int64_t step = std::max<std::int64_t>(
      1, coord_max / static_cast<std::int64_t>(
                         1000 * static_cast<std::int64_t>(
                                    std::max<std::size_t>(1, seg_len / 100))));
  Rng rng(seed);
  parallel_for(
      0, num_segs,
      [&](std::size_t s) {
        Rng seg_rng = rng.split(s);
        P cur;
        for (int d = 0; d < D; ++d) {
          cur[d] = static_cast<std::int64_t>(seg_rng.ith_bounded(
              static_cast<std::uint64_t>(d),
              static_cast<std::uint64_t>(coord_max) + 1));
        }
        const std::size_t lo = s * seg_len;
        const std::size_t hi = std::min(n, lo + seg_len);
        for (std::size_t i = lo; i < hi; ++i) {
          pts[i] = cur;
          for (int d = 0; d < D; ++d) {
            const std::uint64_t r = seg_rng.ith_bounded(
                (i - lo + 1) * static_cast<std::uint64_t>(D) +
                    static_cast<std::uint64_t>(d),
                2 * static_cast<std::uint64_t>(step) + 1);
            cur[d] += static_cast<std::int64_t>(r) - step;
            cur[d] = std::clamp<std::int64_t>(cur[d], 0, coord_max);
          }
        }
      },
      1);
  return pts;
}

// ---------------------------------------------------------------------------
// Real-world substitutes (see DESIGN.md §2)
// ---------------------------------------------------------------------------

// 2D OSM-like data: city clusters + road corridors + background noise.
std::vector<Point2> osm_sim(std::size_t n, std::uint64_t seed,
                            std::int64_t coord_max = kDefaultMax2D);

// 3D COSMO-like data: Plummer-sphere halo mixture.
std::vector<Point3> cosmo_sim(std::size_t n, std::uint64_t seed,
                              std::int64_t coord_max = kDefaultMax3D);

// ---------------------------------------------------------------------------
// Deduplication (paper removes duplicates from real-world data)
// ---------------------------------------------------------------------------

template <typename P>
std::vector<P> dedup(std::vector<P> pts) {
  sample_sort(pts, [](const P& a, const P& b) { return a < b; });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

// ---------------------------------------------------------------------------
// Query generators
// ---------------------------------------------------------------------------

// In-distribution query points: sample data points and jitter slightly.
template <typename P>
std::vector<P> ind_queries(const std::vector<P>& data, std::size_t q,
                           std::uint64_t seed, std::int64_t coord_max) {
  Rng rng(hash64(seed, 0x1d));
  const std::int64_t jitter = std::max<std::int64_t>(1, coord_max / 100000);
  return tabulate<P>(q, [&](std::size_t i) {
    P p = data[rng.ith_bounded(2 * i, data.size())];
    for (int d = 0; d < P::kDim; ++d) {
      const auto r = rng.ith_bounded(
          hash64(2 * i + 1, static_cast<std::uint64_t>(d)),
          2 * static_cast<std::uint64_t>(jitter) + 1);
      p[d] = std::clamp<std::int64_t>(
          p[d] + static_cast<std::int64_t>(r) - jitter, 0, coord_max);
    }
    return p;
  });
}

// Out-of-distribution query points: uniform over the whole space.
template <int D>
std::vector<Point<std::int64_t, D>> ood_queries(std::size_t q, std::uint64_t seed,
                                                std::int64_t coord_max) {
  return uniform<D>(q, hash64(seed, 0x00d), coord_max);
}

// Axis-aligned query boxes with the given side length, centred on anchors.
template <typename P>
std::vector<Box<typename P::coord_t, P::kDim>> range_boxes(
    const std::vector<P>& anchors, std::int64_t side, std::int64_t coord_max) {
  using B = Box<typename P::coord_t, P::kDim>;
  return tabulate<B>(anchors.size(), [&](std::size_t i) {
    B b;
    for (int d = 0; d < P::kDim; ++d) {
      const std::int64_t c = anchors[i][d];
      b.lo[d] = std::max<std::int64_t>(0, c - side / 2);
      b.hi[d] = std::min<std::int64_t>(coord_max, c + side / 2);
    }
    return b;
  });
}

}  // namespace psi::datagen
